package eval

// Interned data layout for the compiled-plan engine (Options.
// CompilePlans). Constant terms are assigned dense uint32 ids by a
// per-evaluation interner, tuples become flat []uint32 rows, and both
// the per-relation duplicate set and the bound-position hash indexes
// key on integer hashes with exact row comparison — no string is built
// or hashed anywhere on the join path. The interner is an internal
// boundary: it is created inside EvalCtx and nothing outside the
// engine ever sees an id.

import (
	"strings"
	"sync"

	"repro/internal/ast"
)

// interner maps constant terms to dense uint32 ids for one evaluation.
// It is built single-threaded (plan compilation + EDB interning) and
// read-only afterwards, except for the lazy key cache used when the
// result is converted back to a public DB after the fixpoint.
type interner struct {
	ids   map[ast.Term]uint32
	terms []ast.Term
	keys  []string // lazy Term.Key cache, aligned with terms
}

func newInterner() *interner {
	return &interner{ids: make(map[ast.Term]uint32, 64)}
}

// intern returns the id of t, assigning the next dense id on first use.
func (in *interner) intern(t ast.Term) uint32 {
	if id, ok := in.ids[t]; ok {
		return id
	}
	id := uint32(len(in.terms))
	in.terms = append(in.terms, t)
	in.ids[t] = id
	return id
}

// term is the inverse of intern.
func (in *interner) term(id uint32) ast.Term { return in.terms[id] }

// termKey returns Term.Key for an id, rendering each distinct term at
// most once. Only used during result conversion (single-threaded).
func (in *interner) termKey(id uint32) string {
	if in.keys == nil {
		in.keys = make([]string, len(in.terms))
	}
	k := in.keys[id]
	if k == "" {
		k = in.terms[id].Key()
		in.keys[id] = k
	}
	return k
}

// rowKey renders the Tuple.Key of an interned row (the exact string
// Tuple.Key would produce), reusing b as scratch.
func (in *interner) rowKey(b *strings.Builder, row []uint32) string {
	b.Reset()
	for i, id := range row {
		if i > 0 {
			b.WriteByte('\x01')
		}
		b.WriteString(in.termKey(id))
	}
	return b.String()
}

// hashU32s is FNV-1a over 32-bit words.
func hashU32s(vals []uint32) uint64 {
	h := uint64(14695981039346656037)
	for _, v := range vals {
		h ^= uint64(v)
		h *= 1099511628211
	}
	return h
}

func rowsEqual(a, b []uint32) bool {
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func pow2(n int) int {
	s := 16
	for s < n {
		s <<= 1
	}
	return s
}

// rowHash is an open-addressed hash set over the rows of a flat
// []uint32 store (arity values per row). It stores row indices and
// compares rows by value, so membership answers are exact — a hash
// collision costs a comparison, never a wrong answer. find is
// read-only and safe for concurrent readers of a frozen store;
// insertLookup/place mutate and require a single writer.
type rowHash struct {
	data   *[]uint32 // backing flat row store
	arity  int
	n      int
	hashes []uint64
	idxs   []int32 // row index per slot; -1 = empty
}

func (h *rowHash) rowAt(i int32) []uint32 {
	d := *h.data
	s := int(i) * h.arity
	return d[s : s+h.arity]
}

// find reports membership without mutating the table.
func (h *rowHash) find(vals []uint32) bool {
	if h.n == 0 {
		return false
	}
	mask := len(h.idxs) - 1
	hv := hashU32s(vals)
	for i := int(hv) & mask; ; i = (i + 1) & mask {
		idx := h.idxs[i]
		if idx < 0 {
			return false
		}
		if h.hashes[i] == hv && rowsEqual(h.rowAt(idx), vals) {
			return true
		}
	}
}

// findIdx is find returning the stored row index instead of a bool:
// the index of vals in the backing store, or -1 when absent. Read-only;
// lets prefix snapshots (RelView) answer membership for rows [0, hi)
// of an append-only relation in O(1).
func (h *rowHash) findIdx(vals []uint32) int32 {
	if h.n == 0 {
		return -1
	}
	mask := len(h.idxs) - 1
	hv := hashU32s(vals)
	for i := int(hv) & mask; ; i = (i + 1) & mask {
		idx := h.idxs[i]
		if idx < 0 {
			return -1
		}
		if h.hashes[i] == hv && rowsEqual(h.rowAt(idx), vals) {
			return idx
		}
	}
}

// insertLookup probes for vals, growing the table first if needed. It
// returns the slot where vals lives or should be placed, the hash, and
// whether the row is already present.
func (h *rowHash) insertLookup(vals []uint32) (slot int, hv uint64, found bool) {
	if h.idxs == nil {
		h.init(16)
	} else if (h.n+1)*4 > len(h.idxs)*3 {
		h.grow()
	}
	mask := len(h.idxs) - 1
	hv = hashU32s(vals)
	for i := int(hv) & mask; ; i = (i + 1) & mask {
		idx := h.idxs[i]
		if idx < 0 {
			return i, hv, false
		}
		if h.hashes[i] == hv && rowsEqual(h.rowAt(idx), vals) {
			return i, hv, true
		}
	}
}

// place records row idx at a slot previously returned by insertLookup.
// The caller must have appended the row's values to the store.
func (h *rowHash) place(slot int, hv uint64, idx int32) {
	h.hashes[slot] = hv
	h.idxs[slot] = idx
	h.n++
}

func (h *rowHash) init(size int) {
	h.hashes = make([]uint64, size)
	h.idxs = make([]int32, size)
	for i := range h.idxs {
		h.idxs[i] = -1
	}
}

func (h *rowHash) grow() {
	oldHashes, oldIdxs := h.hashes, h.idxs
	h.init(len(oldIdxs) * 2)
	mask := len(h.idxs) - 1
	for s, idx := range oldIdxs {
		if idx < 0 {
			continue
		}
		hv := oldHashes[s]
		i := int(hv) & mask
		for h.idxs[i] >= 0 {
			i = (i + 1) & mask
		}
		h.hashes[i] = hv
		h.idxs[i] = idx
	}
}

// rowIndex is a hash index from the values at a fixed set of argument
// positions to the rows holding them, as head/next chains in ascending
// row order (the same candidate order the legacy string-keyed index
// returns, which keeps probe counts and provenance bit-identical).
// Built lazily under the owning irel's lock; appended to incrementally
// at single-threaded round barriers.
type rowIndex struct {
	pos    []int
	n      int // occupied entries
	hashes []uint64
	heads  []int32 // first row of the chain per slot; -1 = empty
	tails  []int32 // last row of the chain per slot
	next   []int32 // next[row] = next row with the same key; -1 = end
}

func buildRowIndex(r *irel, pos []int) *rowIndex {
	ix := &rowIndex{pos: pos}
	ix.init(pow2(r.n*2 + 16))
	ix.next = make([]int32, 0, r.n)
	for i := 0; i < r.n; i++ {
		ix.appendRow(r, int32(i))
	}
	return ix
}

func (ix *rowIndex) init(size int) {
	ix.hashes = make([]uint64, size)
	ix.heads = make([]int32, size)
	ix.tails = make([]int32, size)
	for i := range ix.heads {
		ix.heads[i] = -1
	}
}

func (ix *rowIndex) projHash(row []uint32) uint64 {
	h := uint64(14695981039346656037)
	for _, p := range ix.pos {
		h ^= uint64(row[p])
		h *= 1099511628211
	}
	return h
}

func (ix *rowIndex) projEqualRows(a, b []uint32) bool {
	for _, p := range ix.pos {
		if a[p] != b[p] {
			return false
		}
	}
	return true
}

func (ix *rowIndex) projEqualVals(row, vals []uint32) bool {
	for k, p := range ix.pos {
		if row[p] != vals[k] {
			return false
		}
	}
	return true
}

// appendRow adds row ri (which must be the next row, len(ix.next)) to
// the index, extending the chain for its key.
func (ix *rowIndex) appendRow(r *irel, ri int32) {
	ix.next = append(ix.next, -1)
	if (ix.n+1)*4 > len(ix.heads)*3 {
		ix.grow()
	}
	row := r.row(int(ri))
	hv := ix.projHash(row)
	mask := len(ix.heads) - 1
	for i := int(hv) & mask; ; i = (i + 1) & mask {
		head := ix.heads[i]
		if head < 0 {
			ix.hashes[i] = hv
			ix.heads[i] = ri
			ix.tails[i] = ri
			ix.n++
			return
		}
		if ix.hashes[i] == hv && ix.projEqualRows(r.row(int(head)), row) {
			ix.next[ix.tails[i]] = ri
			ix.tails[i] = ri
			return
		}
	}
}

func (ix *rowIndex) grow() {
	oldHashes, oldHeads, oldTails := ix.hashes, ix.heads, ix.tails
	ix.init(len(oldHeads) * 2)
	mask := len(ix.heads) - 1
	for s, head := range oldHeads {
		if head < 0 {
			continue
		}
		hv := oldHashes[s]
		i := int(hv) & mask
		for ix.heads[i] >= 0 {
			i = (i + 1) & mask
		}
		ix.hashes[i] = hv
		ix.heads[i] = head
		ix.tails[i] = oldTails[s]
	}
}

// lookup returns the first row whose values at ix.pos equal vals, or
// -1; follow ix.next for the rest of the chain. Read-only.
func (ix *rowIndex) lookup(r *irel, vals []uint32) int32 {
	hv := hashU32s(vals)
	mask := len(ix.heads) - 1
	for i := int(hv) & mask; ; i = (i + 1) & mask {
		head := ix.heads[i]
		if head < 0 {
			return -1
		}
		if ix.hashes[i] == hv && ix.projEqualVals(r.row(int(head)), vals) {
			return head
		}
	}
}

// irel is an interned relation: a set of same-arity []uint32 rows in a
// single flat slice, a duplicate-elimination hash set, and lazily built
// bound-position indexes. The same concurrency contract as Relation
// applies: any number of goroutines may read (row, contains, index
// probes) a frozen irel; add requires that no reader runs concurrently,
// which the evaluator guarantees by mutating only at round barriers.
type irel struct {
	arity int
	n     int
	data  []uint32
	set   rowHash
	// mu guards indexes: concurrent probes of the same un-indexed
	// position mask would otherwise race on the lazy build.
	mu      sync.RWMutex
	indexes map[uint64]*rowIndex // keyed by position bitmask
	// stats holds one distinct-value sketch per column (see stats.go),
	// lazily allocated on first insert and updated on every insert, so
	// planning-time cardinality estimates are always current. Same
	// contract as data: written only by add, read only when frozen.
	stats []ColSketch
}

func newIrel(arity, sizeHint int) *irel {
	r := &irel{arity: arity}
	r.set = rowHash{data: &r.data, arity: arity}
	if sizeHint > 0 {
		r.data = make([]uint32, 0, sizeHint*arity)
		r.set.init(pow2(sizeHint * 2))
	}
	return r
}

func (r *irel) row(i int) []uint32 {
	s := i * r.arity
	return r.data[s : s+r.arity]
}

// add inserts a row, reporting whether it was new. Existing indexes are
// maintained incrementally, exactly like Relation.Add. Single writer.
func (r *irel) add(vals []uint32) bool {
	slot, hv, found := r.set.insertLookup(vals)
	if found {
		return false
	}
	idx := int32(r.n)
	r.data = append(r.data, vals...)
	r.n++
	r.set.place(slot, hv, idx)
	if r.stats == nil && r.arity > 0 {
		r.stats = make([]ColSketch, r.arity)
	}
	for j, v := range vals {
		r.stats[j].Add(v)
	}
	r.mu.Lock()
	for _, ix := range r.indexes {
		ix.appendRow(r, idx)
	}
	r.mu.Unlock()
	return true
}

// contains reports membership; read-only and safe for concurrent use
// on a frozen relation.
func (r *irel) contains(vals []uint32) bool { return r.set.find(vals) }

// index returns the rowIndex for the given position bitmask, building
// it lazily. Safe for concurrent readers: the build is double-checked
// under an RWMutex, mirroring Relation.lookup.
func (r *irel) index(mask uint64, pos []int) *rowIndex {
	r.mu.RLock()
	ix := r.indexes[mask]
	r.mu.RUnlock()
	if ix != nil {
		return ix
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if ix = r.indexes[mask]; ix != nil {
		return ix
	}
	ix = buildRowIndex(r, pos)
	if r.indexes == nil {
		r.indexes = map[uint64]*rowIndex{}
	}
	r.indexes[mask] = ix
	return ix
}
