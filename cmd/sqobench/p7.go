package main

// P7: the persistent storage engine — what durability costs on the
// update path, and what recovery costs at cold start.
//
// Update overhead: the same deterministic fact-batch workload is
// appended through the store in four modes — in-memory mirror only
// (the baseline every other mode contains), and WAL-backed under each
// fsync policy (never / interval / always). The WAL record and byte
// counts are exact (the encoding is a pure function of the workload);
// the per-append wall clock is the measurement. fsync=always pays one
// device sync per acknowledged operation, so it runs a shorter
// schedule — the honest number here is orders of magnitude above the
// others on real disks, and that is the point of reporting it.
//
// Recovery: a store is built with W operations and a checkpoint
// interval, closed, and re-opened cold; open time (segment load + WAL
// tail replay + torn-tail scan) is the measurement, and the number of
// tail records replayed is exact — checkpointing is visible as the
// replay count dropping from W to W mod interval while the recovered
// fact set stays identical. With -out the rows are written as JSON
// (committed as BENCH_7.json for regression tracking).

import (
	"encoding/json"
	"fmt"
	"log"
	"os"
	"runtime"
	"time"

	"repro/internal/ast"
	"repro/internal/store"
	"repro/internal/workload"
)

type p7Row struct {
	Workload string `json:"workload"`
	Mode     string `json:"mode"`
	Records  int64  `json:"wal_records"`
	WalBytes int64  `json:"wal_bytes"`
	Facts    int    `json:"facts"`
	AppendNs int64  `json:"append_ns,omitempty"` // total across the schedule
	OpenNs   int64  `json:"open_ns,omitempty"`   // cold-start recovery
	Replayed int64  `json:"replayed,omitempty"`  // WAL tail records at open
}

type p7Report struct {
	CPUs   int     `json:"cpus"`
	GOOS   string  `json:"goos"`
	GOARCH string  `json:"goarch"`
	Go     string  `json:"go_version"`
	Rows   []p7Row `json:"results"`
}

// p7Schedule derives a deterministic mutation schedule: one dataset
// create, then alternating insert/retract batches over a monotone
// graph — the same op mix the durable server logs, minus HTTP.
type p7Op struct {
	adds, dels []ast.Atom
}

func p7Schedule(records int) []p7Op {
	base := workload.MonotoneRandomGraph(400, 12, 1)
	ops := make([]p7Op, 0, records)
	ops = append(ops, p7Op{adds: base})
	for i := 1; i < records; i++ {
		if i%4 == 3 {
			// Retract a slice of an earlier batch (misses are no-ops,
			// matching server semantics).
			prev := workload.MonotoneRandomGraph(400, 12, int64(i-2))
			ops = append(ops, p7Op{dels: prev[:4]})
		} else {
			ops = append(ops, p7Op{adds: workload.MonotoneRandomGraph(400, 12, int64(i))})
		}
	}
	return ops
}

// p7Apply drives the schedule through a store: op 0 creates the
// dataset, the rest are fact batches.
func p7Apply(s *store.Store, ops []p7Op) error {
	if err := s.AppendDatasetCreate("bench", ops[0].adds); err != nil {
		return err
	}
	for _, op := range ops[1:] {
		if err := s.AppendFacts("bench", op.adds, op.dels); err != nil {
			return err
		}
	}
	return nil
}

func runP7() {
	records, alwaysRecords := 2000, 150
	recoveryLens := []int{1000, 4000}
	ckptEvery := 750 // non-multiple of the sweep, so recovery combines segment load + tail replay
	if *quick {
		records, alwaysRecords = 400, 40
		recoveryLens = []int{300, 1000}
		ckptEvery = 200
	}

	report := p7Report{
		CPUs:   runtime.NumCPU(),
		GOOS:   runtime.GOOS,
		GOARCH: runtime.GOARCH,
		Go:     runtime.Version(),
	}

	// --- update overhead per durability mode ---------------------------
	type mode struct {
		name    string
		dir     bool // WAL-backed (vs mirror-only)
		policy  store.FsyncPolicy
		records int
	}
	modes := []mode{
		{"memory", false, store.FsyncNever, records},
		{"wal-never", true, store.FsyncNever, records},
		{"wal-interval", true, store.FsyncInterval, records},
		{"wal-always", true, store.FsyncAlways, records},
	}
	modes[3].records = alwaysRecords

	header("workload", "mode", "records", "wal bytes", "append/op", "total")
	for _, m := range modes {
		ops := p7Schedule(m.records)
		// Best of three trials, each against a fresh store: fsync
		// latency on shared disks is far too noisy for one shot.
		var elapsed time.Duration
		var c store.Counters
		var facts int
		for trial := 0; trial < 3; trial++ {
			dir := ""
			if m.dir {
				d, err := os.MkdirTemp("", "sqobench-p7-*")
				if err != nil {
					log.Fatal(err)
				}
				defer os.RemoveAll(d)
				dir = d
			}
			s, _, err := store.Open(dir, store.Options{Fsync: m.policy})
			if err != nil {
				log.Fatal(err)
			}
			start := time.Now()
			if err := p7Apply(s, ops); err != nil {
				log.Fatal(err)
			}
			t := time.Since(start)
			c = s.Counters()
			facts = len(s.Facts("bench"))
			if err := s.Close(); err != nil {
				log.Fatal(err)
			}
			if trial == 0 || t < elapsed {
				elapsed = t
			}
		}
		row := p7Row{
			Workload: fmt.Sprintf("update(%d)", m.records),
			Mode:     m.name,
			Records:  c.Appends,
			WalBytes: c.Bytes,
			Facts:    facts,
			AppendNs: elapsed.Nanoseconds(),
		}
		report.Rows = append(report.Rows, row)
		fmt.Printf("%-14s | %-12s | %7d | %9d | %9v | %8v\n",
			row.Workload, row.Mode, row.Records, row.WalBytes,
			time.Duration(row.AppendNs/row.Records).Round(100*time.Nanosecond),
			elapsed.Round(time.Millisecond))
	}

	// --- cold-start recovery vs WAL length and checkpoint interval -----
	fmt.Println()
	header("workload", "mode", "records", "replayed", "facts", "open")
	for _, w := range recoveryLens {
		for _, ckpt := range []int{0, ckptEvery} {
			ops := p7Schedule(w)
			dir, err := os.MkdirTemp("", "sqobench-p7-*")
			if err != nil {
				log.Fatal(err)
			}
			defer os.RemoveAll(dir)
			s, _, err := store.Open(dir, store.Options{Fsync: store.FsyncNever, CheckpointEvery: ckpt})
			if err != nil {
				log.Fatal(err)
			}
			if err := p7Apply(s, ops); err != nil {
				log.Fatal(err)
			}
			if err := s.Close(); err != nil {
				log.Fatal(err)
			}
			// Cold open: segment (if any checkpoint fired) + tail replay.
			// Best of three opens of the same directory.
			var rec *store.Recovered
			var facts int
			var openNs int64
			for trial := 0; trial < 3; trial++ {
				r, thisRec, err := store.Open(dir, store.Options{})
				if err != nil {
					log.Fatal(err)
				}
				facts = len(r.Facts("bench"))
				if err := r.Close(); err != nil {
					log.Fatal(err)
				}
				rec = thisRec
				if trial == 0 || thisRec.Elapsed.Nanoseconds() < openNs {
					openNs = thisRec.Elapsed.Nanoseconds()
				}
			}
			modeName := "ckpt-none"
			if ckpt > 0 {
				modeName = fmt.Sprintf("ckpt-%d", ckpt)
			}
			row := p7Row{
				Workload: fmt.Sprintf("recovery(%d)", w),
				Mode:     modeName,
				Records:  int64(w),
				Facts:    facts,
				OpenNs:   openNs,
				Replayed: int64(rec.WALRecords),
			}
			report.Rows = append(report.Rows, row)
			fmt.Printf("%-14s | %-12s | %7d | %8d | %5d | %8v\n",
				row.Workload, row.Mode, row.Records, row.Replayed, row.Facts,
				time.Duration(row.OpenNs).Round(10*time.Microsecond))
		}
	}

	if *outPath != "" {
		data, err := json.MarshalIndent(report, "", "  ")
		if err != nil {
			log.Fatal(err)
		}
		if err := os.WriteFile(*outPath, append(data, '\n'), 0o644); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("wrote %s\n", *outPath)
	}
}
