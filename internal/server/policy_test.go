package server

import (
	"io"
	"net/http"
	"reflect"
	"strings"
	"testing"
)

// TestServerJoinOrderKnob exercises the join-order surface end to end:
// the config default applies, per-request join_order overrides it,
// answers are identical across policies, invalid names answer 400, and
// the per-policy metric counts completed evaluations.
func TestServerJoinOrderKnob(t *testing.T) {
	_, ts := newTestServer(t, Config{JoinOrder: "cost"})
	registerDataset(t, ts.URL, "g", serverTestFacts)

	type resp struct {
		Answers   []string `json:"answers"`
		JoinOrder string   `json:"join_order"`
	}
	query := func(joinOrder string) resp {
		t.Helper()
		var out resp
		code, raw := doJSON(t, http.MethodPost, ts.URL+"/v1/query", map[string]any{
			"program":    serverTestProgram,
			"ics":        serverTestICs,
			"dataset":    "g",
			"join_order": joinOrder,
		}, &out)
		if code != http.StatusOK {
			t.Fatalf("query(join_order=%q): %d %s", joinOrder, code, raw)
		}
		return out
	}

	base := query("") // server default: cost
	if base.JoinOrder != "cost" {
		t.Fatalf("default join_order = %q, want cost (config)", base.JoinOrder)
	}
	for _, pol := range []string{"greedy", "cost", "adaptive"} {
		got := query(pol)
		if got.JoinOrder != pol {
			t.Fatalf("join_order echo = %q, want %q", got.JoinOrder, pol)
		}
		if !reflect.DeepEqual(got.Answers, base.Answers) {
			t.Fatalf("answers diverged under %q:\n%v\nvs\n%v", pol, got.Answers, base.Answers)
		}
	}

	code, raw := doJSON(t, http.MethodPost, ts.URL+"/v1/query", map[string]any{
		"program":    serverTestProgram,
		"dataset":    "g",
		"join_order": "fastest",
	}, nil)
	if code != http.StatusBadRequest {
		t.Fatalf("invalid join_order: %d %s, want 400", code, raw)
	}

	mresp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer mresp.Body.Close()
	body, _ := io.ReadAll(mresp.Body)
	for _, want := range []string{
		`sqod_eval_policy_total{policy="greedy"} 1`,
		`sqod_eval_policy_total{policy="cost"} 2`, // default + explicit
		`sqod_eval_policy_total{policy="adaptive"} 1`,
	} {
		if !strings.Contains(string(body), want) {
			t.Fatalf("metrics missing %q:\n%s", want, body)
		}
	}
}

// TestServerInvalidConfigPolicyFallsBack: a bad config value must not
// take the daemon down; it falls back to greedy.
func TestServerInvalidConfigPolicyFallsBack(t *testing.T) {
	_, ts := newTestServer(t, Config{JoinOrder: "nope"})
	registerDataset(t, ts.URL, "g", serverTestFacts)
	var out struct {
		JoinOrder string `json:"join_order"`
	}
	code, raw := doJSON(t, http.MethodPost, ts.URL+"/v1/query", map[string]any{
		"program": serverTestProgram,
		"dataset": "g",
	}, &out)
	if code != http.StatusOK {
		t.Fatalf("query: %d %s", code, raw)
	}
	if out.JoinOrder != "greedy" {
		t.Fatalf("join_order = %q, want greedy fallback", out.JoinOrder)
	}
}
