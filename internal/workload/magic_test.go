package workload_test

// Differential property for goal-directed evaluation over the program
// generator: binding a goal argument and evaluating through the
// magic-sets rewrite must answer exactly like bottom-up evaluation of
// the same goal, across engines, worker counts, and the streaming
// unfolding. Goals are drawn from actual answers (a hit) and from a
// constant outside the generated domain (a miss), so both the
// demand-reaches-something and demand-reaches-nothing paths run.

import (
	"fmt"
	"reflect"
	"testing"

	sqo "repro"
	"repro/internal/ast"
	"repro/internal/workload"
)

func TestRandomProgramMagicDifferential(t *testing.T) {
	for seed := int64(1); seed <= 20; seed++ {
		progSrc, _, facts := workload.RandomProgram(seed)
		prog, err := sqo.ParseProgram(progSrc)
		if err != nil {
			t.Fatalf("seed %d: generated program does not parse: %v", seed, err)
		}
		db := sqo.NewDBFrom(facts)

		off := sqo.DefaultEvalOptions()
		off.Magic = sqo.MagicOff
		all, _, err := sqo.QueryWith(prog, db, off)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		ar, err := prog.PredArity()
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		n := ar[prog.Query]
		if n == 0 {
			continue
		}

		var goals [][]sqo.Term
		if len(all) > 0 {
			hit := []sqo.Term{all[0][0]}
			for i := 1; i < n; i++ {
				hit = append(hit, ast.V(fmt.Sprintf("G%d", i)))
			}
			goals = append(goals, hit)
		}
		miss := []sqo.Term{ast.N(-999)}
		for i := 1; i < n; i++ {
			miss = append(miss, ast.V(fmt.Sprintf("G%d", i)))
		}
		goals = append(goals, miss)

		for gi, goal := range goals {
			gp := prog.Clone()
			gp.Goal = goal
			want := answers(t, gp, db, off)
			for _, compile := range []bool{false, true} {
				for _, workers := range []int{1, 4} {
					for _, stream := range []bool{false, true} {
						opts := sqo.DefaultEvalOptions()
						opts.CompilePlans = compile
						opts.Workers = workers
						opts.Stream = stream
						got := answers(t, gp, db, opts)
						if !reflect.DeepEqual(got, want) {
							t.Fatalf("seed %d goal %d (compile=%v workers=%d stream=%v): magic answers diverge\n got %v\nwant %v\ngoal %s\nprogram:\n%s",
								seed, gi, compile, workers, stream, got, want, gp.GoalAtom(), progSrc)
						}
					}
				}
			}
		}
	}
}
