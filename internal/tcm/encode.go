package tcm

import (
	"fmt"

	"repro/internal/ast"
)

// Encoding bundles the Theorem 5.4 reduction artifacts for a machine:
// the datalog program computing reachable configuration times and the
// halting query, and the {¬}-integrity constraints forcing any
// consistent database to describe a correct computation.
type Encoding struct {
	Program *ast.Program
	ICs     []ast.IC
}

var (
	vT  = ast.V("T")
	vT2 = ast.V("T2")
	vX  = ast.V("X")
	vX2 = ast.V("X2")
	vY  = ast.V("Y")
	vY2 = ast.V("Y2")
	vZ  = ast.V("Z")
	vZ2 = ast.V("Z2")
)

func atom(pred string, args ...ast.Term) ast.Atom { return ast.NewAtom(pred, args...) }

// stateChain returns atoms expressing S = j through the zero/succ
// representation: zero(Z0), succ(Z0, Z1), ..., succ(Z_{j-1}, S).
// For j = 0 it is just zero(S). Fresh variable names use the given
// prefix.
func stateChain(j int, s ast.Term, prefix string) []ast.Atom {
	if j == 0 {
		return []ast.Atom{atom("zero", s)}
	}
	out := []ast.Atom{atom("zero", ast.V(prefix+"0"))}
	for k := 0; k < j; k++ {
		from := ast.V(fmt.Sprintf("%s%d", prefix, k))
		var to ast.Term = ast.V(fmt.Sprintf("%s%d", prefix, k+1))
		if k == j-1 {
			to = s
		}
		out = append(out, atom("succ", from, to))
	}
	return out
}

// Encode builds the Theorem 5.4 reduction for the machine. The
// returned program's query predicate is halt (0-ary); it is satisfiable
// with respect to the returned constraints iff the machine halts.
func Encode(m *Machine) (*Encoding, error) {
	if err := m.Validate(); err != nil {
		return nil, err
	}
	enc := &Encoding{Program: &ast.Program{Query: "halt"}}

	// Program: reach computes the times of configurations reachable
	// from the initial one; halt fires when a reachable configuration
	// is in the halting state.
	c1, c2, s := ast.V("C1"), ast.V("C2"), ast.V("S")
	c1b, c2b, sb := ast.V("C1b"), ast.V("C2b"), ast.V("Sb")
	enc.Program.Rules = append(enc.Program.Rules,
		ast.Rule{
			Head: atom("reach", vT),
			Pos:  []ast.Atom{atom("cnfg", vT, c1, c2, s), atom("zero", vT)},
		},
		ast.Rule{
			Head: atom("reach", vT2),
			Pos: []ast.Atom{
				atom("reach", vT), atom("succ", vT, vT2),
				atom("cnfg", vT2, c1b, c2b, sb),
			},
		},
	)
	haltRule := ast.Rule{
		Head: atom("halt"),
		Pos:  []ast.Atom{atom("reach", vT), atom("cnfg", vT, c1, c2, s)},
	}
	haltRule.Pos = append(haltRule.Pos, stateChain(m.Halt, s, "H")...)
	enc.Program.Rules = append(enc.Program.Rules, haltRule)

	enc.ICs = append(enc.ICs, domainICs()...)
	enc.ICs = append(enc.ICs, equalityICs()...)
	enc.ICs = append(enc.ICs, successorICs()...)
	enc.ICs = append(enc.ICs, initialConfigICs()...)
	for _, tr := range m.Trans {
		enc.ICs = append(enc.ICs, transitionICs(tr)...)
	}
	return enc, nil
}

// domainICs force dom to contain every constant of succ, zero, cnfg.
func domainICs() []ast.IC {
	c1, c2, s := ast.V("C1"), ast.V("C2"), ast.V("S")
	var out []ast.IC
	out = append(out,
		ast.IC{Pos: []ast.Atom{atom("succ", vX, vY)}, Neg: []ast.Atom{atom("dom", vX)}},
		ast.IC{Pos: []ast.Atom{atom("succ", vX, vY)}, Neg: []ast.Atom{atom("dom", vY)}},
		ast.IC{Pos: []ast.Atom{atom("zero", vX)}, Neg: []ast.Atom{atom("dom", vX)}},
	)
	cn := atom("cnfg", vT, c1, c2, s)
	for _, v := range []ast.Term{vT, c1, c2, s} {
		out = append(out, ast.IC{Pos: []ast.Atom{cn}, Neg: []ast.Atom{atom("dom", v)}})
	}
	return out
}

// equalityICs force eq to behave as an equality on dom and neq as its
// complement containing the strict successor reachability.
//
// REPAIR OF A PAPER BUG: the appendix's constraint
//
//	:- eq(X,X'), neq(X',Z), eq(Z,Z'), neq(Z',Y'), eq(Y',Y), ¬neq(X,Y).
//
// composes neq with itself. Since the dichotomy constraints force neq
// to be symmetric on distinct elements, neq(0,1) and neq(1,0) would
// force neq(0,0), contradicting eq(0,0) — the printed constraint set
// is unsatisfiable on every domain with two or more elements. We
// restore the intent (Claim 6.1: no succ-path connects eq-equal
// elements) by splitting the role of neq: a strict-order witness lt
// contains succ modulo eq, is transitive, and is disjoint from eq,
// while neq remains symmetric distinctness containing lt.
func equalityICs() []ast.IC {
	return []ast.IC{
		// eq reflexive on dom, symmetric, transitive.
		{Pos: []ast.Atom{atom("dom", vX)}, Neg: []ast.Atom{atom("eq", vX, vX)}},
		{Pos: []ast.Atom{atom("eq", vX, vY)}, Neg: []ast.Atom{atom("eq", vY, vX)}},
		{Pos: []ast.Atom{atom("eq", vX, vZ), atom("eq", vZ, vY)}, Neg: []ast.Atom{atom("eq", vX, vY)}},
		// Any two zeros are equal; nothing non-zero equals a zero.
		{Pos: []ast.Atom{atom("zero", vX), atom("zero", vY)}, Neg: []ast.Atom{atom("eq", vX, vY)}},
		{Pos: []ast.Atom{atom("zero", vX), atom("eq", vX, vY)}, Neg: []ast.Atom{atom("zero", vY)}},
		// lt contains succ modulo eq and is transitive modulo eq.
		{Pos: []ast.Atom{atom("eq", vX, vX2), atom("succ", vX2, vY2), atom("eq", vY2, vY)},
			Neg: []ast.Atom{atom("lt", vX, vY)}},
		{Pos: []ast.Atom{atom("eq", vX, vX2), atom("lt", vX2, vZ), atom("eq", vZ, vZ2),
			atom("lt", vZ2, vY2), atom("eq", vY2, vY)},
			Neg: []ast.Atom{atom("lt", vX, vY)}},
		// Claim 6.1: a succ-path never connects eq-equal elements.
		{Pos: []ast.Atom{atom("lt", vX, vY), atom("eq", vX, vY)}},
		// neq is symmetric distinctness containing lt.
		{Pos: []ast.Atom{atom("lt", vX, vY)}, Neg: []ast.Atom{atom("neq", vX, vY)}},
		{Pos: []ast.Atom{atom("neq", vX, vY)}, Neg: []ast.Atom{atom("neq", vY, vX)}},
		// Dichotomy: never both, always one.
		{Pos: []ast.Atom{atom("eq", vX, vY), atom("neq", vX, vY)}},
		{Pos: []ast.Atom{atom("dom", vX), atom("dom", vY)},
			Neg: []ast.Atom{atom("eq", vX, vY), atom("neq", vX, vY)}},
	}
}

// successorICs force succ to be a partial injection compatible with
// eq, with zeros having no predecessor.
func successorICs() []ast.IC {
	return []ast.IC{
		// Equal elements have equal successors and predecessors.
		{Pos: []ast.Atom{atom("succ", vX, vY), atom("succ", vX2, vZ),
			atom("eq", vX, vX2), atom("neq", vY, vZ)}},
		{Pos: []ast.Atom{atom("succ", vY, vX), atom("succ", vZ, vX2),
			atom("eq", vX, vX2), atom("neq", vY, vZ)}},
		// A zero has no predecessor.
		{Pos: []ast.Atom{atom("succ", vX, vY), atom("zero", vY)}},
	}
}

// initialConfigICs force configurations at time zero to have zero
// counters and the zero (start) state, and cnfg to be closed under eq.
func initialConfigICs() []ast.IC {
	c1, c2, s := ast.V("C1"), ast.V("C2"), ast.V("S")
	c1b, c2b, sb, tb := ast.V("C1b"), ast.V("C2b"), ast.V("Sb"), ast.V("Tb")
	cn := atom("cnfg", vT, c1, c2, s)
	return []ast.IC{
		{Pos: []ast.Atom{cn, atom("zero", vT)}, Neg: []ast.Atom{atom("zero", c1)}},
		{Pos: []ast.Atom{cn, atom("zero", vT)}, Neg: []ast.Atom{atom("zero", c2)}},
		{Pos: []ast.Atom{cn, atom("zero", vT)}, Neg: []ast.Atom{atom("zero", s)}},
		{Pos: []ast.Atom{cn, atom("eq", vT, tb), atom("eq", c1, c1b),
			atom("eq", c2, c2b), atom("eq", s, sb)},
			Neg: []ast.Atom{atom("cnfg", tb, c1b, c2b, sb)}},
	}
}

// transitionICs build the three mismatch constraints for one
// transition: wrong next state, wrong next c1, wrong next c2. Each is
// violated when two consecutive configurations match the transition's
// guard but the successor configuration deviates from its effect.
func transitionICs(tr Transition) []ast.IC {
	c1, c2, s := ast.V("C1"), ast.V("C2"), ast.V("S")
	c1b, c2b, sb := ast.V("C1b"), ast.V("C2b"), ast.V("Sb")

	// Common prefix: two consecutive configurations + guards.
	prefix := func() ([]ast.Atom, []ast.Atom) {
		pos := []ast.Atom{
			atom("cnfg", vT, c1, c2, s),
			atom("cnfg", vT2, c1b, c2b, sb),
			atom("succ", vT, vT2),
		}
		pos = append(pos, stateChain(tr.State, s, "J")...)
		var neg []ast.Atom
		switch tr.C1 {
		case IfZero:
			pos = append(pos, atom("zero", c1))
		case IfPos:
			neg = append(neg, atom("zero", c1))
		}
		switch tr.C2 {
		case IfZero:
			pos = append(pos, atom("zero", c2))
		case IfPos:
			neg = append(neg, atom("zero", c2))
		}
		return pos, neg
	}

	var out []ast.IC

	// Wrong next state: S'' = tr.Next, neq(Sb, S'').
	{
		pos, neg := prefix()
		s2 := ast.V("Snext")
		pos = append(pos, stateChain(tr.Next, s2, "K")...)
		pos = append(pos, atom("neq", sb, s2))
		out = append(out, ast.IC{Pos: pos, Neg: neg})
	}
	// Wrong next c1.
	{
		pos, neg := prefix()
		pos, neg = appendOpMismatch(pos, neg, tr.Op1, c1, c1b, "M1")
		out = append(out, ast.IC{Pos: pos, Neg: neg})
	}
	// Wrong next c2.
	{
		pos, neg := prefix()
		pos, neg = appendOpMismatch(pos, neg, tr.Op2, c2, c2b, "M2")
		out = append(out, ast.IC{Pos: pos, Neg: neg})
	}
	return out
}

// appendOpMismatch adds the atoms stating "the next counter value nxt
// is NOT the result of applying op to cur".
func appendOpMismatch(pos, neg []ast.Atom, op CounterOp, cur, nxt ast.Term, prefix string) ([]ast.Atom, []ast.Atom) {
	switch op {
	case Keep:
		pos = append(pos, atom("neq", nxt, cur))
	case Inc:
		w := ast.V(prefix + "w")
		pos = append(pos, atom("succ", cur, w), atom("neq", nxt, w))
	case Dec:
		w := ast.V(prefix + "w")
		pos = append(pos, atom("succ", w, cur), atom("neq", nxt, w))
	}
	return pos, neg
}

// TraceDB materializes a finite run as a concrete extensional
// database over the encoding's vocabulary: a number line 0..max with
// succ/zero/dom/eq/neq, and one cnfg fact per trace configuration. The
// resulting database satisfies every constraint of the encoding
// exactly when the trace is a correct computation.
func TraceDB(m *Machine, trace []Config) []ast.Atom {
	maxVal := len(trace) // times 0..len-1; counters may exceed that
	for _, c := range trace {
		if c.C1+1 > maxVal {
			maxVal = c.C1 + 1
		}
		if c.C2+1 > maxVal {
			maxVal = c.C2 + 1
		}
		if c.State+1 > maxVal {
			maxVal = c.State + 1
		}
	}
	n := func(i int) ast.Term { return ast.N(float64(i)) }
	var facts []ast.Atom
	facts = append(facts, atom("zero", n(0)))
	for i := 0; i <= maxVal; i++ {
		facts = append(facts, atom("dom", n(i)))
		facts = append(facts, atom("eq", n(i), n(i)))
		if i < maxVal {
			facts = append(facts, atom("succ", n(i), n(i+1)))
		}
		for j := 0; j <= maxVal; j++ {
			if i < j {
				facts = append(facts, atom("lt", n(i), n(j)))
			}
			if i != j {
				facts = append(facts, atom("neq", n(i), n(j)))
			}
		}
	}
	for _, c := range trace {
		facts = append(facts, atom("cnfg", n(c.Time), n(c.C1), n(c.C2), n(c.State)))
	}
	return facts
}
