package server

import (
	"context"
	"encoding/json"
	"errors"
	"io"
	"net/http"
	"time"

	sqo "repro"
	"repro/internal/store"
)

// This file implements the mutable-dataset surface: fact-level
// insertions and retractions on registered datasets, and materialized
// views that survive those updates through incremental maintenance
// (counting / delete-rederive; see package incr). Fact mutations and
// view materializations are evaluation work, so they pass through the
// same admission semaphore as queries and run under their own
// deadline (Config.UpdateTimeout).

// --- fact mutations ---------------------------------------------------

// updateResponse describes one completed dataset mutation.
type updateResponse struct {
	Dataset      DatasetInfo  `json:"dataset"`
	FactsAdded   int          `json:"facts_added"`
	FactsRemoved int          `json:"facts_removed"`
	Views        []viewUpdate `json:"views,omitempty"`
	UpdateMS     float64      `json:"update_ms"`
}

// parseFactsBody reads the request body as datalog ground facts.
func parseFactsBody(w http.ResponseWriter, r *http.Request) ([]sqo.Atom, bool) {
	body, err := io.ReadAll(r.Body)
	if err != nil {
		writeError(w, http.StatusBadRequest, "bad_request", "reading body: %v", err)
		return nil, false
	}
	facts, err := sqo.ParseFacts(string(body))
	if err != nil {
		writeError(w, http.StatusBadRequest, "parse_error", "parsing facts: %v", err)
		return nil, false
	}
	return facts, true
}

// updateDataset is the shared tail of every mutation handler: admit,
// bound by the update deadline, apply under the dataset lock, account
// metrics, respond.
func (s *Server) updateDataset(w http.ResponseWriter, r *http.Request, ds *dataset, adds, dels []sqo.Atom) {
	release, ok := s.admit()
	if !ok {
		w.Header().Set("Retry-After", "1")
		writeError(w, http.StatusTooManyRequests, "overloaded", "too many in-flight requests (limit %d)", s.cfg.MaxInflight)
		return
	}
	defer release()

	ctx, cancel := context.WithTimeout(r.Context(), s.updateTimeout())
	defer cancel()

	start := time.Now()
	ds.mu.Lock()
	// Write-ahead: the mutation reaches the log (durable per the fsync
	// policy) before it is applied or acknowledged. Under ds.mu, so the
	// WAL records for one dataset land in application order.
	if s.store != nil {
		if err := s.store.AppendFacts(ds.name, adds, dels); err != nil {
			ds.mu.Unlock()
			s.writeStoreError(w, "update", ds.name, err)
			return
		}
	}
	up := ds.updateLocked(ctx, adds, dels, time.Now())
	info := ds.describeLocked()
	ds.mu.Unlock()

	s.metrics.FactUpdates.Add(1)
	s.metrics.ViewApplies.Add(int64(len(up.views)))

	writeJSON(w, http.StatusOK, updateResponse{
		Dataset:      info,
		FactsAdded:   up.added,
		FactsRemoved: up.removed,
		Views:        up.views,
		UpdateMS:     float64(time.Since(start).Microseconds()) / 1000,
	})
}

func (s *Server) updateTimeout() time.Duration {
	if s.cfg.UpdateTimeout > 0 {
		return s.cfg.UpdateTimeout
	}
	return s.cfg.DefaultTimeout
}

// handleFactsAdd inserts facts into a dataset (POST
// /v1/datasets/{name}/facts, body: datalog ground facts).
func (s *Server) handleFactsAdd(w http.ResponseWriter, r *http.Request) {
	ds, ok := s.datasets.get(r.PathValue("name"))
	if !ok {
		writeError(w, http.StatusNotFound, "unknown_dataset", "dataset %q is not registered", r.PathValue("name"))
		return
	}
	facts, ok := parseFactsBody(w, r)
	if !ok {
		return
	}
	s.updateDataset(w, r, ds, facts, nil)
}

// handleFactsDelete retracts facts from a dataset (DELETE
// /v1/datasets/{name}/facts, body: datalog ground facts). Facts not
// present are ignored.
func (s *Server) handleFactsDelete(w http.ResponseWriter, r *http.Request) {
	ds, ok := s.datasets.get(r.PathValue("name"))
	if !ok {
		writeError(w, http.StatusNotFound, "unknown_dataset", "dataset %q is not registered", r.PathValue("name"))
		return
	}
	facts, ok := parseFactsBody(w, r)
	if !ok {
		return
	}
	s.updateDataset(w, r, ds, nil, facts)
}

// handleDatasetDelete unregisters a dataset and drops its views
// (DELETE /v1/datasets/{name}).
func (s *Server) handleDatasetDelete(w http.ResponseWriter, r *http.Request) {
	name := r.PathValue("name")
	var persist func() error
	if s.store != nil {
		persist = func() error { return s.store.AppendDatasetDelete(name) }
	}
	ds, ok, err := s.datasets.delete(name, persist)
	if err != nil {
		s.writeStoreError(w, "delete", name, err)
		return
	}
	if !ok {
		writeError(w, http.StatusNotFound, "unknown_dataset", "dataset %q is not registered", name)
		return
	}
	ds.mu.Lock()
	nviews := len(ds.views)
	ds.views = map[string]*matView{}
	ds.mu.Unlock()
	s.metrics.Views.Add(int64(-nviews))
	writeJSON(w, http.StatusOK, map[string]any{"deleted": name, "views_dropped": nviews})
}

// --- materialized views -----------------------------------------------

type viewRequest struct {
	// Program is datalog source: rules plus a '?- pred.' declaration.
	Program string `json:"program"`
	// ICs are integrity constraints in source syntax.
	ICs string `json:"ics,omitempty"`
	// Optimize selects whether to run the Levy–Sagiv rewrite before
	// materializing (default true). The rewrite is cached, so a view
	// over an already-optimized program costs only the fixpoint.
	Optimize *bool `json:"optimize,omitempty"`
	// TimeoutMS bounds the initial materialization (0 → server default).
	TimeoutMS int `json:"timeout_ms,omitempty"`
	// MaxTuples bounds tuples materialized by the initial fixpoint and
	// any full rebuild (0 → server default).
	MaxTuples int64 `json:"max_tuples,omitempty"`
}

// viewStatsJSON mirrors sqo.ViewStats over the wire.
type viewStatsJSON struct {
	InitRounds     int   `json:"init_rounds"`
	InitTuples     int64 `json:"init_tuples"`
	InitProbes     int64 `json:"init_probes"`
	Applies        int64 `json:"applies"`
	FullRebuilds   int64 `json:"full_rebuilds"`
	DeltaRounds    int64 `json:"delta_rounds"`
	DeltaProbes    int64 `json:"delta_probes"`
	RederiveChecks int64 `json:"rederive_checks"`
	AnswersAdded   int64 `json:"answers_added"`
	AnswersRemoved int64 `json:"answers_removed"`
}

func toViewStats(s sqo.ViewStats) viewStatsJSON {
	return viewStatsJSON{
		InitRounds:     s.InitRounds,
		InitTuples:     s.InitTuples,
		InitProbes:     s.InitProbes,
		Applies:        s.Applies,
		FullRebuilds:   s.FullRebuilds,
		DeltaRounds:    s.DeltaRounds,
		DeltaProbes:    s.DeltaProbes,
		RederiveChecks: s.RederiveChecks,
		AnswersAdded:   s.TuplesAdded,
		AnswersRemoved: s.TuplesRemoved,
	}
}

type viewResponse struct {
	Name        string   `json:"name"`
	Dataset     string   `json:"dataset"`
	Query       string   `json:"query"`
	Answers     []string `json:"answers"`
	AnswerCount int      `json:"answer_count"`
	Optimized   bool     `json:"optimized"`
	CacheHit    bool     `json:"cache_hit,omitempty"`
	// Diagnostics carries the semantic linter's findings on the
	// program as submitted; present only on view creation.
	Diagnostics   []sqo.LintFinding `json:"diagnostics,omitempty"`
	Stats         viewStatsJSON     `json:"stats"`
	MaterializeMS float64           `json:"materialize_ms,omitempty"`
}

// handleViewCreate materializes a program over a dataset and keeps it
// live across fact updates (POST /v1/datasets/{name}/views/{view},
// body: {program, ics, optimize, timeout_ms, max_tuples}). Duplicate
// view names answer 409.
func (s *Server) handleViewCreate(w http.ResponseWriter, r *http.Request) {
	name, vname := r.PathValue("name"), r.PathValue("view")
	ds, ok := s.datasets.get(name)
	if !ok {
		writeError(w, http.StatusNotFound, "unknown_dataset", "dataset %q is not registered", name)
		return
	}
	var req viewRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, "bad_request", "decoding JSON: %v", err)
		return
	}

	release, ok := s.admit()
	if !ok {
		w.Header().Set("Retry-After", "1")
		writeError(w, http.StatusTooManyRequests, "overloaded", "too many in-flight requests (limit %d)", s.cfg.MaxInflight)
		return
	}
	defer release()

	timeout := s.cfg.DefaultTimeout
	if req.TimeoutMS > 0 {
		timeout = time.Duration(req.TimeoutMS) * time.Millisecond
	}
	if timeout > s.cfg.MaxTimeout {
		timeout = s.cfg.MaxTimeout
	}
	ctx, cancel := context.WithTimeout(r.Context(), timeout)
	defer cancel()

	doOptimize := req.Optimize == nil || *req.Optimize
	var (
		prog     *sqo.Program
		cacheHit bool
	)
	if doOptimize {
		res, hit, err := s.optimizeCached(ctx, req.Program, req.ICs)
		if err != nil {
			s.writeRequestError(w, err)
			return
		}
		prog, cacheHit = res.Program, hit
	} else {
		p, err := sqo.ParseProgram(req.Program)
		if err != nil {
			writeError(w, http.StatusBadRequest, "parse_error", "parsing program: %v", err)
			return
		}
		if p.Query == "" {
			writeError(w, http.StatusBadRequest, "bad_request", "program has no query declaration ('?- pred.')")
			return
		}
		prog = p
	}
	maxTuples := s.cfg.MaxTuples
	if req.MaxTuples > 0 {
		maxTuples = req.MaxTuples
	}

	// The dataset lock covers materialization: a concurrent fact update
	// between snapshotting the EDB and registering the view would
	// otherwise be invisible to the view forever.
	start := time.Now()
	ds.mu.Lock()
	if _, exists := ds.views[vname]; exists {
		ds.mu.Unlock()
		writeError(w, http.StatusConflict, "view_exists", "view %q already exists on dataset %q", vname, name)
		return
	}
	view, err := sqo.MaterializeCtx(ctx, prog, ds.db, sqo.ViewOptions{MaxTuples: maxTuples, Policy: s.policy})
	if err != nil {
		ds.mu.Unlock()
		s.writeEvalError(w, err)
		return
	}
	// The registration is logged before the view becomes visible (and
	// before the 200): recovery re-materializes from the stored source,
	// so only the definition needs to be durable, not the answers.
	if s.store != nil {
		err := s.store.AppendViewRegister(name, store.ViewDef{
			Name: vname, Program: req.Program, ICs: req.ICs, Optimized: doOptimize,
		})
		if err != nil {
			ds.mu.Unlock()
			s.writeStoreError(w, "view create", vname, err)
			return
		}
	}
	mv := &matView{name: vname, program: prog, optimized: doOptimize, view: view, createdAt: time.Now()}
	ds.views[vname] = mv
	ds.mu.Unlock()
	s.metrics.Views.Add(1)

	s.respondView(w, ds, mv, cacheHit, float64(time.Since(start).Microseconds())/1000,
		s.lintDiagnostics(ctx, req.Program, req.ICs))
}

// handleViewGet returns a view's current answers (GET
// /v1/datasets/{name}/views/{view}); a view broken by a failed update
// repairs itself (full rebuild) here.
func (s *Server) handleViewGet(w http.ResponseWriter, r *http.Request) {
	name, vname := r.PathValue("name"), r.PathValue("view")
	ds, ok := s.datasets.get(name)
	if !ok {
		writeError(w, http.StatusNotFound, "unknown_dataset", "dataset %q is not registered", name)
		return
	}
	ds.mu.Lock()
	mv, ok := ds.views[vname]
	ds.mu.Unlock()
	if !ok {
		writeError(w, http.StatusNotFound, "unknown_view", "view %q is not registered on dataset %q", vname, name)
		return
	}
	s.respondView(w, ds, mv, false, 0, nil)
}

// handleViewDelete drops a view (DELETE /v1/datasets/{name}/views/{view}).
func (s *Server) handleViewDelete(w http.ResponseWriter, r *http.Request) {
	name, vname := r.PathValue("name"), r.PathValue("view")
	ds, ok := s.datasets.get(name)
	if !ok {
		writeError(w, http.StatusNotFound, "unknown_dataset", "dataset %q is not registered", name)
		return
	}
	ds.mu.Lock()
	_, ok = ds.views[vname]
	if ok && s.store != nil {
		if err := s.store.AppendViewDrop(name, vname); err != nil {
			ds.mu.Unlock()
			s.writeStoreError(w, "view delete", vname, err)
			return
		}
	}
	delete(ds.views, vname)
	ds.mu.Unlock()
	if !ok {
		writeError(w, http.StatusNotFound, "unknown_view", "view %q is not registered on dataset %q", vname, name)
		return
	}
	s.metrics.Views.Add(-1)
	writeJSON(w, http.StatusOK, map[string]any{"deleted": vname, "dataset": name})
}

// respondView renders a view's current answers and statistics.
// Answers() repairs a broken view first, so a view that failed an
// update deadline serves correct (rebuilt) answers here.
func (s *Server) respondView(w http.ResponseWriter, ds *dataset, mv *matView, cacheHit bool, materializeMS float64, diagnostics []sqo.LintFinding) {
	tuples, err := mv.view.Answers()
	if err != nil {
		s.writeEvalError(w, err)
		return
	}
	answers := make([]string, len(tuples))
	for i, t := range tuples {
		answers[i] = t.String()
	}
	writeJSON(w, http.StatusOK, viewResponse{
		Name:          mv.name,
		Dataset:       ds.name,
		Query:         mv.program.Query,
		Answers:       answers,
		AnswerCount:   len(answers),
		Optimized:     mv.optimized,
		CacheHit:      cacheHit,
		Diagnostics:   diagnostics,
		Stats:         toViewStats(mv.view.Stats()),
		MaterializeMS: materializeMS,
	})
}

// writeEvalError maps evaluation failures (cancellation, deadline,
// budget, engine errors) onto the uniform error envelope.
func (s *Server) writeEvalError(w http.ResponseWriter, err error) {
	if ctxErr := classifyCtxErr(err); ctxErr != nil {
		s.writeRequestError(w, ctxErr)
		return
	}
	if errors.Is(err, sqo.ErrBudget) {
		s.metrics.QueryBudgets.Add(1)
		writeError(w, http.StatusUnprocessableEntity, "budget_exceeded", "%v", err)
		return
	}
	writeError(w, http.StatusUnprocessableEntity, "eval_error", "%v", err)
}
