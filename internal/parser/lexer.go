// Package parser implements a lexer and recursive-descent parser for
// the datalog dialect used throughout this repository:
//
//	% rules
//	path(X, Y) :- step(X, Y).
//	path(X, Y) :- step(X, Z), path(Z, Y), X < 100.
//	% integrity constraints (rules with empty heads)
//	:- startPoint(X), endPoint(Y), Y <= X.
//	% negated EDB subgoals
//	reach(X) :- node(X), !blocked(X).
//	% ground facts
//	step(1, 2).
//	% query-predicate declaration
//	?- path.
//
// Variables start with an upper-case letter or underscore; predicate
// names and symbolic constants start with a lower-case letter; numeric
// constants are decimal (optionally signed and fractional); string
// constants may also be written in double quotes.
package parser

import (
	"fmt"
	"strconv"
	"strings"
)

// tokKind enumerates token kinds.
type tokKind uint8

const (
	tokEOF     tokKind = iota
	tokIdent           // lower-case identifier: predicate or symbolic constant
	tokVar             // variable: upper-case or underscore start
	tokNum             // numeric constant
	tokStr             // quoted string constant
	tokLParen          // (
	tokRParen          // )
	tokComma           // ,
	tokDot             // .
	tokImplies         // :-
	tokQuery           // ?-
	tokBang            // !
	tokLT              // <
	tokLE              // <=
	tokGT              // >
	tokGE              // >=
	tokEQ              // =
	tokNE              // !=
)

func (k tokKind) String() string {
	switch k {
	case tokEOF:
		return "end of input"
	case tokIdent:
		return "identifier"
	case tokVar:
		return "variable"
	case tokNum:
		return "number"
	case tokStr:
		return "string"
	case tokLParen:
		return "'('"
	case tokRParen:
		return "')'"
	case tokComma:
		return "','"
	case tokDot:
		return "'.'"
	case tokImplies:
		return "':-'"
	case tokQuery:
		return "'?-'"
	case tokBang:
		return "'!'"
	case tokLT:
		return "'<'"
	case tokLE:
		return "'<='"
	case tokGT:
		return "'>'"
	case tokGE:
		return "'>='"
	case tokEQ:
		return "'='"
	default:
		return "'!='"
	}
}

// token is a lexed token with its source position.
type token struct {
	kind tokKind
	text string
	line int
	col  int
}

// lexer scans input into tokens.
type lexer struct {
	src  string
	pos  int
	line int
	col  int
}

func newLexer(src string) *lexer { return &lexer{src: src, line: 1, col: 1} }

// Error is a parse error carrying a source position.
type Error struct {
	Line, Col int
	Msg       string
}

func (e *Error) Error() string {
	return fmt.Sprintf("%d:%d: %s", e.Line, e.Col, e.Msg)
}

func (lx *lexer) errf(line, col int, format string, args ...any) error {
	return &Error{Line: line, Col: col, Msg: fmt.Sprintf(format, args...)}
}

func (lx *lexer) peekByte() byte {
	if lx.pos >= len(lx.src) {
		return 0
	}
	return lx.src[lx.pos]
}

func (lx *lexer) advance() byte {
	b := lx.src[lx.pos]
	lx.pos++
	if b == '\n' {
		lx.line++
		lx.col = 1
	} else {
		lx.col++
	}
	return b
}

// next returns the next token.
func (lx *lexer) next() (token, error) {
	for lx.pos < len(lx.src) {
		b := lx.peekByte()
		switch {
		case b == ' ' || b == '\t' || b == '\r' || b == '\n':
			lx.advance()
		case b == '%':
			for lx.pos < len(lx.src) && lx.peekByte() != '\n' {
				lx.advance()
			}
		default:
			goto scan
		}
	}
	return token{kind: tokEOF, line: lx.line, col: lx.col}, nil

scan:
	line, col := lx.line, lx.col
	b := lx.peekByte()
	switch {
	case b == '(':
		lx.advance()
		return token{tokLParen, "(", line, col}, nil
	case b == ')':
		lx.advance()
		return token{tokRParen, ")", line, col}, nil
	case b == ',':
		lx.advance()
		return token{tokComma, ",", line, col}, nil
	case b == '.':
		// Disambiguate rule terminator from a leading-dot fraction.
		lx.advance()
		return token{tokDot, ".", line, col}, nil
	case b == ':':
		lx.advance()
		if lx.peekByte() != '-' {
			return token{}, lx.errf(line, col, "expected ':-', found ':%c'", lx.peekByte())
		}
		lx.advance()
		return token{tokImplies, ":-", line, col}, nil
	case b == '?':
		lx.advance()
		if lx.peekByte() != '-' {
			return token{}, lx.errf(line, col, "expected '?-'")
		}
		lx.advance()
		return token{tokQuery, "?-", line, col}, nil
	case b == '!':
		lx.advance()
		if lx.peekByte() == '=' {
			lx.advance()
			return token{tokNE, "!=", line, col}, nil
		}
		return token{tokBang, "!", line, col}, nil
	case b == '<':
		lx.advance()
		if lx.peekByte() == '=' {
			lx.advance()
			return token{tokLE, "<=", line, col}, nil
		}
		return token{tokLT, "<", line, col}, nil
	case b == '>':
		lx.advance()
		if lx.peekByte() == '=' {
			lx.advance()
			return token{tokGE, ">=", line, col}, nil
		}
		return token{tokGT, ">", line, col}, nil
	case b == '=':
		lx.advance()
		return token{tokEQ, "=", line, col}, nil
	case b == '"':
		return lx.scanString(line, col)
	case b == '-' || b >= '0' && b <= '9':
		return lx.scanNumber(line, col)
	case isIdentStart(rune(b)):
		return lx.scanIdent(line, col)
	default:
		return token{}, lx.errf(line, col, "unexpected character %q", string(b))
	}
}

// scanString scans a double-quoted string constant. The raw token
// (quotes included) is decoded with strconv.Unquote, so the accepted
// escape set is Go's — a superset of the \n, \t, \\, \" escapes this
// lexer historically supported, and exactly what the pretty-printer's
// %q form emits (including \xNN and \uNNNN for non-printable runes).
func (lx *lexer) scanString(line, col int) (token, error) {
	start := lx.pos
	lx.advance() // opening quote
	for {
		if lx.pos >= len(lx.src) {
			return token{}, lx.errf(line, col, "unterminated string")
		}
		b := lx.advance()
		if b == '\\' {
			if lx.pos >= len(lx.src) {
				return token{}, lx.errf(line, col, "unterminated string escape")
			}
			lx.advance()
			continue
		}
		if b == '"' {
			break
		}
		if b == '\n' {
			return token{}, lx.errf(line, col, "newline in string")
		}
	}
	s, err := strconv.Unquote(lx.src[start:lx.pos])
	if err != nil {
		return token{}, lx.errf(line, col, "invalid string literal %s", lx.src[start:lx.pos])
	}
	return token{tokStr, s, line, col}, nil
}

func (lx *lexer) scanNumber(line, col int) (token, error) {
	var sb strings.Builder
	if lx.peekByte() == '-' {
		sb.WriteByte(lx.advance())
		if b := lx.peekByte(); b < '0' || b > '9' {
			return token{}, lx.errf(line, col, "expected digit after '-'")
		}
	}
	for lx.pos < len(lx.src) {
		b := lx.peekByte()
		if b >= '0' && b <= '9' {
			sb.WriteByte(lx.advance())
			continue
		}
		// A '.' is part of the number only if followed by a digit;
		// otherwise it is the rule terminator.
		if b == '.' && lx.pos+1 < len(lx.src) && lx.src[lx.pos+1] >= '0' && lx.src[lx.pos+1] <= '9' && !strings.Contains(sb.String(), ".") {
			sb.WriteByte(lx.advance())
			continue
		}
		break
	}
	// Exponent notation ('e'/'E', optional sign, digits) — the form
	// the pretty-printer emits for large magnitudes — is part of the
	// number only when a digit actually follows, so "10elems" still
	// lexes as a number and then an identifier.
	if lx.pos < len(lx.src) && (lx.peekByte() == 'e' || lx.peekByte() == 'E') {
		j := lx.pos + 1
		if j < len(lx.src) && (lx.src[j] == '+' || lx.src[j] == '-') {
			j++
		}
		if j < len(lx.src) && lx.src[j] >= '0' && lx.src[j] <= '9' {
			sb.WriteByte(lx.advance()) // e | E
			if b := lx.peekByte(); b == '+' || b == '-' {
				sb.WriteByte(lx.advance())
			}
			for lx.pos < len(lx.src) && lx.peekByte() >= '0' && lx.peekByte() <= '9' {
				sb.WriteByte(lx.advance())
			}
		}
	}
	return token{tokNum, sb.String(), line, col}, nil
}

func (lx *lexer) scanIdent(line, col int) (token, error) {
	var sb strings.Builder
	first := rune(lx.peekByte())
	for lx.pos < len(lx.src) && isIdentPart(rune(lx.peekByte())) {
		sb.WriteByte(lx.advance())
	}
	kind := tokIdent
	if first >= 'A' && first <= 'Z' || first == '_' {
		kind = tokVar
	}
	return token{kind, sb.String(), line, col}, nil
}

// Identifiers are ASCII-only: the lexer scans byte-at-a-time, so
// admitting unicode.IsLetter bytes would silently split multi-byte
// UTF-8 letters into Latin-1 mojibake (and produce constants that
// cannot be printed back as identifiers). Non-ASCII constants belong
// in quoted strings.
func isIdentStart(r rune) bool {
	return r == '_' || r >= 'a' && r <= 'z' || r >= 'A' && r <= 'Z'
}

func isIdentPart(r rune) bool {
	return isIdentStart(r) || r >= '0' && r <= '9'
}
