// statsequal — a `go vet -vettool` driver for the eval.Stats
// comparison-contract analyzer (internal/analyzers/statsequal).
//
// Usage:
//
//	go build -o bin/statsequal ./cmd/statsequal
//	go vet -vettool=bin/statsequal ./internal/eval/
//
// The driver speaks the unit-checker protocol the go command expects
// of a vet tool, implemented directly on the standard library (the
// repository builds with no external dependencies):
//
//   - `-V=full` prints a version line the build cache can fingerprint;
//   - `-flags` prints the tool's flag definitions (none, hence "[]");
//   - otherwise the last argument is a *.cfg file: JSON describing one
//     package (GoFiles to analyze, VetxOutput to write). Findings are
//     printed to stderr as file:line:col: message and the exit status
//     is 2 when any exist, so `go vet` fails the build.
package main

import (
	"encoding/json"
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"os"
	"strings"

	"repro/internal/analyzers/statsequal"
)

// config is the subset of the go command's vet configuration file the
// driver needs; unknown fields are ignored by encoding/json.
type config struct {
	ImportPath string
	GoFiles    []string
	VetxOutput string
}

func main() {
	os.Exit(run(os.Args[1:]))
}

func run(args []string) int {
	for _, a := range args {
		switch {
		case strings.HasPrefix(a, "-V"):
			// The version must be stable for identical tool builds:
			// the go command caches vet results keyed on it.
			fmt.Println("statsequal version v1")
			return 0
		case a == "-flags":
			fmt.Println("[]")
			return 0
		}
	}
	if len(args) == 0 || !strings.HasSuffix(args[len(args)-1], ".cfg") {
		fmt.Fprintln(os.Stderr, "statsequal: expected a vet configuration file; run via go vet -vettool")
		return 1
	}
	b, err := os.ReadFile(args[len(args)-1])
	if err != nil {
		fmt.Fprintf(os.Stderr, "statsequal: %v\n", err)
		return 1
	}
	var cfg config
	if err := json.Unmarshal(b, &cfg); err != nil {
		fmt.Fprintf(os.Stderr, "statsequal: parsing config: %v\n", err)
		return 1
	}
	// The go command requires the facts file to exist after the run;
	// this analyzer exports none.
	if cfg.VetxOutput != "" {
		if err := os.WriteFile(cfg.VetxOutput, nil, 0o666); err != nil {
			fmt.Fprintf(os.Stderr, "statsequal: %v\n", err)
			return 1
		}
	}
	fset := token.NewFileSet()
	var files []*ast.File
	for _, name := range cfg.GoFiles {
		f, err := parser.ParseFile(fset, name, nil, 0)
		if err != nil {
			fmt.Fprintf(os.Stderr, "statsequal: %v\n", err)
			return 1
		}
		files = append(files, f)
	}
	findings := statsequal.Check(files)
	for _, f := range findings {
		fmt.Fprintf(os.Stderr, "%s: %s\n", fset.Position(f.Pos), f.Message)
	}
	if len(findings) > 0 {
		return 2
	}
	return 0
}
