// sqobench runs the reproduction's experiment suite — one experiment
// per row of DESIGN.md's per-experiment index — and prints the tables
// recorded in EXPERIMENTS.md. The paper is a theory paper with a
// single figure, so the suite reproduces Figure 1 structurally and
// turns the paper's worked examples and theorems into measured
// workloads whose *shape* (who wins, by what factor, where the effect
// comes from) is the reproduction target.
//
// Usage:
//
//	sqobench [-run F1|E1|E2|E3|E4|E5|E6|E7|E8|A1|A2|A3|P1|P2|P3|P4|P5|P6|P7|P8|P9|P10] [-quick]
//	         [-out bench.json] [-cpuprofile cpu.prof] [-memprofile mem.prof]
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"runtime"
	"runtime/pprof"
	"strings"
	"time"

	sqo "repro"
)

var (
	quick   = flag.Bool("quick", false, "smaller sweeps")
	outPath = flag.String("out", "", "write machine-readable P3/P4/P6/P7/P8/P9/P10 results (JSON) to this file")
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("sqobench: ")
	runSel := flag.String("run", "", "run a single experiment (F1, E1..E8, A1..A3, P1..P10)")
	cpuProfile := flag.String("cpuprofile", "", "write a CPU profile to this file")
	memProfile := flag.String("memprofile", "", "write a heap profile to this file")
	flag.Parse()

	if *cpuProfile != "" {
		f, err := os.Create(*cpuProfile)
		if err != nil {
			log.Fatal(err)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			log.Fatal(err)
		}
		defer func() {
			pprof.StopCPUProfile()
			f.Close()
		}()
	}
	defer func() {
		if *memProfile == "" {
			return
		}
		f, err := os.Create(*memProfile)
		if err != nil {
			log.Fatal(err)
		}
		defer f.Close()
		runtime.GC() // materialize the retained heap before the snapshot
		if err := pprof.WriteHeapProfile(f); err != nil {
			log.Fatal(err)
		}
	}()

	experiments := []struct {
		id   string
		name string
		fn   func()
	}{
		{"F1", "Figure 1: query forest and rewritten rules s1..s6", runF1},
		{"E1", "Example 3.1: goodPath with Y > X residue", runE1},
		{"E2", "Section 3: threshold 100 pushed into the recursion", runE2},
		{"E3", "Section 4: no b-edge after an a-edge", runE3},
		{"E4", "Theorem 5.1: query-tree construction cost", runE4},
		{"E5", "Theorem 5.2(1): NP emptiness decisions", runE5},
		{"E6", "Proposition 5.1: containment <-> satisfiability", runE6},
		{"E7", "Theorem 5.4: two-counter-machine reduction", runE7},
		{"E8", "Proposition 5.2: emptiness via initialization rules", runE8},
		{"A1", "Ablation: pipeline passes on the threshold workload", runA1},
		{"A2", "Ablation: [CGM88] per-rule baseline vs query tree", runA2},
		{"A3", "Ablation: evaluation engine (semi-naive, indexes)", runA3},
		{"P1", "Parallel semi-naive scaling (workers sweep)", runP1},
		{"P2", "Rewrite-cache amortization (cold vs cache hit)", runP2},
		{"P3", "Compiled join plans vs legacy string-keyed engine", runP3},
		{"P4", "Incremental view maintenance vs recompute", runP4},
		{"P5", "Lint wall-clock per check family", runP5},
		{"P6", "Join-order policies: greedy vs cost vs adaptive", runP6},
		{"P7", "Durable store: update overhead and cold-start recovery", runP7},
		{"P8", "Goal-directed evaluation: magic sets + streaming strata", runP8},
		{"P9", "Horizontal scale-out: cluster scatter-gather + shard sweep", runP9},
		{"P10", "Boundedness: recursion elimination vs fixpoint + fallback cost", runP10},
	}
	for _, e := range experiments {
		if *runSel != "" && !strings.EqualFold(*runSel, e.id) {
			continue
		}
		fmt.Printf("\n=== %s — %s ===\n", e.id, e.name)
		e.fn()
	}
}

const goodPathSrc = `
	path(X, Y) :- step(X, Y).
	path(X, Y) :- step(X, Z), path(Z, Y).
	goodPath(X, Y) :- startPoint(X), path(X, Y), endPoint(Y).
	?- goodPath.
`

const figure1Src = `
	p(X, Y) :- a(X, Y).
	p(X, Y) :- b(X, Y).
	p(X, Y) :- a(X, Z), p(Z, Y).
	p(X, Y) :- b(X, Z), p(Z, Y).
	?- p.
`

type measurement struct {
	answers int
	derived int64
	probes  int64
	elapsed time.Duration
}

func measure(p *sqo.Program, db *sqo.DB) measurement {
	return measureWith(p, db, sqo.DefaultEvalOptions())
}

func measureWith(p *sqo.Program, db *sqo.DB, opts sqo.EvalOptions) measurement {
	start := time.Now()
	idb, stats, err := sqo.EvalWith(p, db, opts)
	if err != nil {
		log.Fatal(err)
	}
	return measurement{
		answers: idb.Count(p.Query),
		derived: stats.TuplesDerived,
		probes:  stats.JoinProbes,
		elapsed: time.Since(start),
	}
}

func ratio(a, b int64) string {
	if b == 0 {
		return "inf"
	}
	return fmt.Sprintf("%.1fx", float64(a)/float64(b))
}

func header(cols ...string) {
	fmt.Println(strings.Join(cols, " | "))
	var dashes []string
	for _, c := range cols {
		dashes = append(dashes, strings.Repeat("-", len(c)))
	}
	fmt.Println(strings.Join(dashes, "-|-"))
}
