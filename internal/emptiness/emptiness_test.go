package emptiness

import (
	"testing"

	"repro/internal/parser"
)

func TestRuleSatisfiableNPCase(t *testing.T) {
	p := parser.MustParseProgram(`
		q(X, Z) :- a(X, Y), b(Y, Z).
		?- q.
	`)
	// Unsatisfiable under the join-forbidding constraint.
	ics := parser.MustParseICs(`:- a(X, Y), b(Y, Z).`)
	v, err := RuleSatisfiable(p.Rules[0], ics, Options{})
	if err != nil || v != Unsatisfiable {
		t.Fatalf("verdict = %v, err = %v", v, err)
	}
	// Satisfiable when the join variable differs.
	p2 := parser.MustParseProgram(`
		q(X, Z) :- a(X, Y), b(W, Z).
		?- q.
	`)
	v, err = RuleSatisfiable(p2.Rules[0], ics, Options{})
	if err != nil || v != Satisfiable {
		t.Fatalf("verdict = %v, err = %v", v, err)
	}
}

func TestRuleSatisfiableSelfJoinPattern(t *testing.T) {
	// The constraint forbids a 2-cycle; the rule requires one.
	ics := parser.MustParseICs(`:- e(X, Y), e(Y, X).`)
	r := parser.MustParseProgram(`q(X, Y) :- e(X, Y), e(Y, X).`).Rules[0]
	v, err := RuleSatisfiable(r, ics, Options{})
	if err != nil || v != Unsatisfiable {
		t.Fatalf("verdict = %v, err = %v", v, err)
	}
	// A plain edge is fine (freezing keeps X and Y distinct, so no
	// 2-cycle appears in the canonical database).
	r2 := parser.MustParseProgram(`q(X, Y) :- e(X, Y).`).Rules[0]
	v, err = RuleSatisfiable(r2, ics, Options{})
	if err != nil || v != Satisfiable {
		t.Fatalf("verdict = %v, err = %v", v, err)
	}
	// But a self-loop in the rule IS a 1-step 2-cycle.
	r3 := parser.MustParseProgram(`q(X) :- e(X, X).`).Rules[0]
	v, err = RuleSatisfiable(r3, ics, Options{})
	if err != nil || v != Unsatisfiable {
		t.Fatalf("verdict = %v, err = %v", v, err)
	}
}

func TestRuleSatisfiableOrderCase(t *testing.T) {
	// {θ}-ic: steps must increase. A rule demanding a decreasing step
	// is unsatisfiable; an increasing one is satisfiable.
	ics := parser.MustParseICs(`:- step(X, Y), X >= Y.`)
	rUp := parser.MustParseProgram(`q(X, Y) :- step(X, Y), X < Y.`).Rules[0]
	v, err := RuleSatisfiable(rUp, ics, Options{})
	if err != nil || v != Satisfiable {
		t.Fatalf("up: verdict = %v, err = %v", v, err)
	}
	rDown := parser.MustParseProgram(`q(X, Y) :- step(X, Y), X > Y.`).Rules[0]
	v, err = RuleSatisfiable(rDown, ics, Options{})
	if err != nil || v != Unsatisfiable {
		t.Fatalf("down: verdict = %v, err = %v", v, err)
	}
	// Unconstrained rule: satisfiable (choose an increasing witness).
	rAny := parser.MustParseProgram(`q(X, Y) :- step(X, Y).`).Rules[0]
	v, err = RuleSatisfiable(rAny, ics, Options{})
	if err != nil || v != Satisfiable {
		t.Fatalf("any: verdict = %v, err = %v", v, err)
	}
}

func TestRuleSatisfiableOrderChain(t *testing.T) {
	// Two constrained steps: the linearization search must find the
	// ordering 1 < 2 < 3.
	ics := parser.MustParseICs(`:- step(X, Y), X >= Y.`)
	r := parser.MustParseProgram(`q(X, Z) :- step(X, Y), step(Y, Z).`).Rules[0]
	v, err := RuleSatisfiable(r, ics, Options{})
	if err != nil || v != Satisfiable {
		t.Fatalf("verdict = %v, err = %v", v, err)
	}
	// A cycle of steps can never satisfy monotonicity.
	r2 := parser.MustParseProgram(`q(X) :- step(X, Y), step(Y, X).`).Rules[0]
	v, err = RuleSatisfiable(r2, ics, Options{})
	if err != nil || v != Unsatisfiable {
		t.Fatalf("cycle: verdict = %v, err = %v", v, err)
	}
}

func TestRuleSatisfiableWithConstants(t *testing.T) {
	ics := parser.MustParseICs(`:- startPoint(X), X < 100.`)
	r := parser.MustParseProgram(`q(X) :- startPoint(X), X < 50.`).Rules[0]
	v, err := RuleSatisfiable(r, ics, Options{})
	if err != nil || v != Unsatisfiable {
		t.Fatalf("verdict = %v, err = %v", v, err)
	}
	r2 := parser.MustParseProgram(`q(X) :- startPoint(X), X > 200.`).Rules[0]
	v, err = RuleSatisfiable(r2, ics, Options{})
	if err != nil || v != Satisfiable {
		t.Fatalf("verdict = %v, err = %v", v, err)
	}
}

func TestRuleSatisfiableNegationChase(t *testing.T) {
	// {¬}-ics: chase-based semi-decision.
	ics := parser.MustParseICs(`
		:- a(X), !b(X).
		:- b(X), c(X).
	`)
	// The rule needs a(X) and c(X): chase adds b(X), then b∧c violates.
	r := parser.MustParseProgram(`q(X) :- a(X), c(X).`).Rules[0]
	v, err := RuleSatisfiable(r, ics, Options{})
	if err != nil || v != Unsatisfiable {
		t.Fatalf("verdict = %v, err = %v", v, err)
	}
	// Without c the chase converges consistently.
	r2 := parser.MustParseProgram(`q(X) :- a(X).`).Rules[0]
	v, err = RuleSatisfiable(r2, ics, Options{})
	if err != nil || v != Satisfiable {
		t.Fatalf("verdict = %v, err = %v", v, err)
	}
}

func TestRuleSatisfiableRuleNegation(t *testing.T) {
	// The rule negates b(X); the constraint forces b(X) for every a —
	// contradiction.
	ics := parser.MustParseICs(`:- a(X), !b(X).`)
	r := parser.MustParseProgram(`q(X) :- a(X), !b(X).`).Rules[0]
	v, err := RuleSatisfiable(r, ics, Options{})
	if err != nil || v != Unsatisfiable {
		t.Fatalf("verdict = %v, err = %v", v, err)
	}
}

func TestEmptyProposition52(t *testing.T) {
	// Both init rules unsatisfiable → the whole recursive program is
	// empty, even though the recursive rule alone looks fine.
	p := parser.MustParseProgram(`
		q(X, Z) :- a(X, Y), b(Y, Z).
		q(X, Z) :- c(X, Y), q(Y, Z).
		?- q.
	`)
	ics := parser.MustParseICs(`:- a(X, Y), b(Y, Z).`)
	empty, decided, err := Empty(p, ics, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !decided || !empty {
		t.Fatalf("empty = %v decided = %v", empty, decided)
	}
	// Adding a satisfiable init rule flips the verdict.
	p2 := parser.MustParseProgram(`
		q(X, Z) :- a(X, Y), b(Y, Z).
		q(X, Y) :- d(X, Y).
		q(X, Z) :- c(X, Y), q(Y, Z).
		?- q.
	`)
	empty, decided, err = Empty(p2, ics, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !decided || empty {
		t.Fatalf("empty = %v decided = %v", empty, decided)
	}
}

func TestEmptyUndecidedUnderTinyBudget(t *testing.T) {
	p := parser.MustParseProgram(`
		q(X) :- a(X), c(X).
		?- q.
	`)
	ics := parser.MustParseICs(`
		:- a(X), !b(X).
		:- b(X), !d(X).
		:- d(X), c(X).
	`)
	// With a 1-step budget the chase cannot finish.
	_, decided, err := Empty(p, ics, Options{ChaseSteps: 1})
	if err != nil {
		t.Fatal(err)
	}
	if decided {
		t.Fatal("tiny budget must leave the question undecided")
	}
	// With budget, the cascade a→b→d→(d∧c violation) settles it.
	empty, decided, err := Empty(p, ics, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !decided || !empty {
		t.Fatalf("empty = %v decided = %v", empty, decided)
	}
}

func TestRuleSatisfiableTheorem53Shape(t *testing.T) {
	// Theorem 5.3 territory: a {≠}-constraint whose inequality spans
	// two atoms. The decidable single-rule case is handled by the
	// linearization procedure: e and f must agree on their second
	// column wherever they share a key.
	ics := parser.MustParseICs(`:- e(X, Y), f(X, Z), Y != Z.`)
	// Demanding disagreement is unsatisfiable.
	r := parser.MustParseProgram(`q(X) :- e(X, Y), f(X, Z), Y < Z.`).Rules[0]
	v, err := RuleSatisfiable(r, ics, Options{})
	if err != nil || v != Unsatisfiable {
		t.Fatalf("verdict = %v, err = %v", v, err)
	}
	// Demanding agreement is satisfiable.
	r2 := parser.MustParseProgram(`q(X) :- e(X, Y), f(X, Z), Y = Z.`).Rules[0]
	v, err = RuleSatisfiable(r2, ics, Options{})
	if err != nil || v != Satisfiable {
		t.Fatalf("verdict = %v, err = %v", v, err)
	}
	// Distinct keys are unconstrained.
	r3 := parser.MustParseProgram(`q(X) :- e(X, Y), f(W, Z), Y < Z.`).Rules[0]
	v, err = RuleSatisfiable(r3, ics, Options{})
	if err != nil || v != Satisfiable {
		t.Fatalf("verdict = %v, err = %v", v, err)
	}
}

func TestRuleSatisfiableFDTheorem55Shape(t *testing.T) {
	// Theorem 5.5's constraint shape: a functional dependency with ≠.
	ics := parser.MustParseICs(`:- e(X, Y1, Z1), e(X, Y2, Z2), Z1 != Z2.`)
	r := parser.MustParseProgram(`q(X) :- e(X, A, B), e(X, C, D), B < D.`).Rules[0]
	v, err := RuleSatisfiable(r, ics, Options{})
	if err != nil || v != Unsatisfiable {
		t.Fatalf("verdict = %v, err = %v", v, err)
	}
	r2 := parser.MustParseProgram(`q(X) :- e(X, A, B), e(X, C, D), A < C.`).Rules[0]
	v, err = RuleSatisfiable(r2, ics, Options{})
	if err != nil || v != Satisfiable {
		t.Fatalf("only the last column is functionally determined: verdict = %v, err = %v", v, err)
	}
}
