package shard

// Coordinator is the cluster front door for a fleet of sqod workers:
// it owns no data itself. Datasets are placed on workers by rendezvous
// hashing over the dataset name (Place), so every coordinator — and a
// restarted replacement with the same -peers flag in any order —
// agrees on ownership with no coordination state. Mutations are
// proxied to the owner; multi-dataset queries scatter to each
// dataset's owner with per-shard deadlines and bounded, jittered
// retries, then gather into one response.
//
// Failure is explicit, never silent: when a shard cannot be reached
// the gathered response still carries every surviving shard's answers,
// plus degraded=true and the failed peer list, so callers can tell a
// complete answer from a partial one. Liveness (/healthz) and
// readiness (/readyz, true while any worker is ready) follow the
// worker convention; /v1/cluster reports per-peer probe verdicts and
// answers placement questions.

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"log/slog"
	"math/rand"
	"net/http"
	"sort"
	"strings"
	"sync"
	"time"
)

// Config tunes the coordinator; Peers is required, everything else
// has serviceable defaults.
type Config struct {
	// Peers are the worker base URLs (e.g. http://10.0.0.7:8080).
	// Order is irrelevant to placement.
	Peers []string
	// PeerTimeout bounds one upstream attempt. Default: 10s.
	PeerTimeout time.Duration
	// Retries is the number of additional attempts after a retryable
	// failure (transport error, 429/502/503/504). Default: 2.
	Retries int
	// RetryBackoff is the base delay before the first retry; it doubles
	// per attempt with ±50% jitter so a struggling worker is not hit by
	// synchronized retry waves. Default: 50ms.
	RetryBackoff time.Duration
	// ProbeInterval is the background health-probe period. Default: 2s.
	ProbeInterval time.Duration
	// Logger receives structured logs; default slog.Default().
	Logger *slog.Logger
	// Client issues upstream requests; default a fresh http.Client
	// (per-request contexts carry the deadlines).
	Client *http.Client
}

// Coordinator scatter-gathers over a fixed peer set. Create with
// NewCoordinator, serve Handler, Start the prober, Close on shutdown.
type Coordinator struct {
	cfg     Config
	peers   []string
	log     *slog.Logger
	client  *http.Client
	metrics *Metrics

	mu      sync.Mutex
	healthy map[string]bool
	probed  bool

	stopOnce sync.Once
	stop     chan struct{}
	wg       sync.WaitGroup
}

// NewCoordinator validates cfg and returns a coordinator (prober not
// yet running; call Start, or ProbeNow for a one-shot).
func NewCoordinator(cfg Config) (*Coordinator, error) {
	if len(cfg.Peers) == 0 {
		return nil, fmt.Errorf("shard: coordinator needs at least one peer")
	}
	if cfg.PeerTimeout <= 0 {
		cfg.PeerTimeout = 10 * time.Second
	}
	if cfg.Retries < 0 {
		cfg.Retries = 0
	} else if cfg.Retries == 0 {
		cfg.Retries = 2
	}
	if cfg.RetryBackoff <= 0 {
		cfg.RetryBackoff = 50 * time.Millisecond
	}
	if cfg.ProbeInterval <= 0 {
		cfg.ProbeInterval = 2 * time.Second
	}
	if cfg.Logger == nil {
		cfg.Logger = slog.Default()
	}
	if cfg.Client == nil {
		cfg.Client = &http.Client{}
	}
	peers := make([]string, 0, len(cfg.Peers))
	seen := map[string]bool{}
	for _, p := range cfg.Peers {
		p = strings.TrimRight(strings.TrimSpace(p), "/")
		if p == "" {
			continue
		}
		if seen[p] {
			return nil, fmt.Errorf("shard: duplicate peer %q", p)
		}
		seen[p] = true
		peers = append(peers, p)
	}
	if len(peers) == 0 {
		return nil, fmt.Errorf("shard: coordinator needs at least one peer")
	}
	return &Coordinator{
		cfg:     cfg,
		peers:   peers,
		log:     cfg.Logger,
		client:  cfg.Client,
		metrics: NewMetrics(),
		healthy: map[string]bool{},
		stop:    make(chan struct{}),
	}, nil
}

// Metrics exposes the coordinator's registry (for tests and embedding).
func (c *Coordinator) Metrics() *Metrics { return c.metrics }

// Peers returns the normalized peer set.
func (c *Coordinator) Peers() []string { return append([]string(nil), c.peers...) }

// Owner returns the peer that owns the named dataset.
func (c *Coordinator) Owner(name string) string { return Place(name, c.peers) }

// Start launches the background health prober. Close stops it.
func (c *Coordinator) Start() {
	c.wg.Add(1)
	go func() {
		defer c.wg.Done()
		t := time.NewTicker(c.cfg.ProbeInterval)
		defer t.Stop()
		for {
			select {
			case <-c.stop:
				return
			case <-t.C:
				ctx, cancel := context.WithTimeout(context.Background(), c.cfg.PeerTimeout)
				c.ProbeNow(ctx)
				cancel()
			}
		}
	}()
}

// Close stops the prober and waits for it.
func (c *Coordinator) Close() {
	c.stopOnce.Do(func() { close(c.stop) })
	c.wg.Wait()
}

// ProbeNow probes every peer's /readyz once, concurrently, and updates
// the health table and sqod_peer_unhealthy.
func (c *Coordinator) ProbeNow(ctx context.Context) {
	var wg sync.WaitGroup
	verdicts := make([]bool, len(c.peers))
	for i, p := range c.peers {
		wg.Add(1)
		go func(i int, p string) {
			defer wg.Done()
			rctx, cancel := context.WithTimeout(ctx, c.cfg.PeerTimeout)
			defer cancel()
			req, err := http.NewRequestWithContext(rctx, http.MethodGet, p+"/readyz", nil)
			if err != nil {
				return
			}
			resp, err := c.client.Do(req)
			if err != nil {
				return
			}
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
			verdicts[i] = resp.StatusCode == http.StatusOK
		}(i, p)
	}
	wg.Wait()
	c.mu.Lock()
	for i, p := range c.peers {
		was, known := c.healthy[p]
		c.healthy[p] = verdicts[i]
		if known && was != verdicts[i] {
			c.log.Info("peer health changed", "peer", p, "healthy", verdicts[i])
		}
	}
	c.probed = true
	c.mu.Unlock()
	for i, p := range c.peers {
		c.metrics.SetUnhealthy(p, !verdicts[i])
	}
}

// healthSnapshot returns the last probe's verdicts, probing once
// synchronously if no probe has run yet.
func (c *Coordinator) healthSnapshot(ctx context.Context) map[string]bool {
	c.mu.Lock()
	probed := c.probed
	c.mu.Unlock()
	if !probed {
		c.ProbeNow(ctx)
	}
	out := map[string]bool{}
	c.mu.Lock()
	for p, h := range c.healthy {
		out[p] = h
	}
	c.mu.Unlock()
	return out
}

// --- upstream requests ------------------------------------------------

// peerResult is one upstream exchange: a transport failure leaves err
// set and status 0; otherwise status/contentType/body mirror the
// worker's response.
type peerResult struct {
	status      int
	contentType string
	body        []byte
	err         error
}

// retryableStatus: 502/503/504 mean the worker (or something in
// front of it) could not serve the attempt; 429 means admission
// control rejected the request before processing it. All four leave
// the worker's state untouched, so retrying is safe even for
// mutations.
func retryableStatus(code int) bool {
	return code == http.StatusBadGateway || code == http.StatusServiceUnavailable ||
		code == http.StatusGatewayTimeout || code == http.StatusTooManyRequests
}

// do issues method path against peer with per-attempt deadlines and
// bounded jittered retries on transport errors and 429/502/503/504. Every
// attempt's outcome lands in sqod_peer_requests_total.
func (c *Coordinator) do(ctx context.Context, peer, method, path string, body []byte) peerResult {
	var last peerResult
	for attempt := 0; ; attempt++ {
		rctx, cancel := context.WithTimeout(ctx, c.cfg.PeerTimeout)
		req, err := http.NewRequestWithContext(rctx, method, peer+path, bytes.NewReader(body))
		if err != nil {
			cancel()
			return peerResult{err: err}
		}
		if len(body) > 0 {
			req.Header.Set("Content-Type", "application/json")
		}
		resp, err := c.client.Do(req)
		if err != nil {
			cancel()
			c.metrics.ObservePeer(peer, 0)
			last = peerResult{err: err}
		} else {
			b, rerr := io.ReadAll(resp.Body)
			resp.Body.Close()
			cancel()
			if rerr != nil {
				c.metrics.ObservePeer(peer, 0)
				last = peerResult{err: rerr}
			} else {
				c.metrics.ObservePeer(peer, resp.StatusCode)
				last = peerResult{status: resp.StatusCode, contentType: resp.Header.Get("Content-Type"), body: b}
				if !retryableStatus(resp.StatusCode) {
					return last
				}
			}
		}
		if attempt >= c.cfg.Retries || ctx.Err() != nil {
			return last
		}
		// Exponential backoff with ±50% jitter.
		base := c.cfg.RetryBackoff << uint(attempt)
		d := base/2 + time.Duration(rand.Int63n(int64(base)))
		select {
		case <-time.After(d):
		case <-ctx.Done():
			return last
		}
	}
}

// --- HTTP surface -----------------------------------------------------

type coordErrorBody struct {
	Error string `json:"error"`
	Code  string `json:"code"`
	Peer  string `json:"peer,omitempty"`
}

func coordJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json; charset=utf-8")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}

// Handler returns the coordinator's routed HTTP handler.
func (c *Coordinator) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		fmt.Fprintln(w, "ok")
	})
	mux.HandleFunc("GET /readyz", func(w http.ResponseWriter, r *http.Request) {
		health := c.healthSnapshot(r.Context())
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		for _, ok := range health {
			if ok {
				fmt.Fprintln(w, "ok")
				return
			}
		}
		w.WriteHeader(http.StatusServiceUnavailable)
		fmt.Fprintln(w, "no ready peers")
	})
	mux.Handle("GET /metrics", c.metrics)
	mux.HandleFunc("GET /v1/cluster", c.handleCluster)
	mux.HandleFunc("GET /v1/datasets", c.handleDatasetList)
	for _, route := range []string{
		"PUT /v1/datasets/{name}",
		"POST /v1/datasets/{name}",
		"DELETE /v1/datasets/{name}",
		"POST /v1/datasets/{name}/facts",
		"DELETE /v1/datasets/{name}/facts",
		"POST /v1/datasets/{name}/views/{view}",
		"GET /v1/datasets/{name}/views/{view}",
		"DELETE /v1/datasets/{name}/views/{view}",
	} {
		mux.HandleFunc(route, c.proxyToOwner)
	}
	mux.HandleFunc("POST /v1/query", c.handleQuery)
	return mux
}

// handleCluster reports the peer set with last-probe verdicts;
// ?place=<dataset> additionally answers a placement question.
func (c *Coordinator) handleCluster(w http.ResponseWriter, r *http.Request) {
	health := c.healthSnapshot(r.Context())
	type peerInfo struct {
		URL     string `json:"url"`
		Healthy bool   `json:"healthy"`
	}
	resp := struct {
		Peers     []peerInfo        `json:"peers"`
		Placement map[string]string `json:"placement,omitempty"`
	}{}
	for _, p := range c.peers {
		resp.Peers = append(resp.Peers, peerInfo{URL: p, Healthy: health[p]})
	}
	if name := r.URL.Query().Get("place"); name != "" {
		resp.Placement = map[string]string{"dataset": name, "peer": c.Owner(name)}
	}
	coordJSON(w, http.StatusOK, resp)
}

// proxyToOwner forwards a single-dataset operation to the peer that
// owns the dataset and relays the response verbatim. The owning peer
// is exposed in X-Sqod-Peer either way.
func (c *Coordinator) proxyToOwner(w http.ResponseWriter, r *http.Request) {
	name := r.PathValue("name")
	owner := c.Owner(name)
	body, err := io.ReadAll(r.Body)
	if err != nil {
		coordJSON(w, http.StatusBadRequest, coordErrorBody{Error: err.Error(), Code: "bad_request"})
		return
	}
	res := c.do(r.Context(), owner, r.Method, r.URL.Path, body)
	w.Header().Set("X-Sqod-Peer", owner)
	if res.err != nil {
		c.log.Warn("proxy failed", "peer", owner, "path", r.URL.Path, "err", res.err)
		coordJSON(w, http.StatusBadGateway, coordErrorBody{
			Error: fmt.Sprintf("dataset owner unreachable: %v", res.err),
			Code:  "peer_unavailable",
			Peer:  owner,
		})
		return
	}
	if res.contentType != "" {
		w.Header().Set("Content-Type", res.contentType)
	}
	w.WriteHeader(res.status)
	_, _ = w.Write(res.body)
}

// handleDatasetList scatters the list to every peer and gathers an
// annotated union. Unreachable peers degrade the response explicitly.
func (c *Coordinator) handleDatasetList(w http.ResponseWriter, r *http.Request) {
	start := time.Now()
	results := make([]peerResult, len(c.peers))
	var wg sync.WaitGroup
	for i, p := range c.peers {
		wg.Add(1)
		go func(i int, p string) {
			defer wg.Done()
			results[i] = c.do(r.Context(), p, http.MethodGet, "/v1/datasets", nil)
		}(i, p)
	}
	wg.Wait()
	c.metrics.ObserveScatter(time.Since(start))

	var datasets []map[string]any
	var failed []string
	for i, p := range c.peers {
		res := results[i]
		if res.err != nil || res.status != http.StatusOK {
			failed = append(failed, p)
			continue
		}
		var items []map[string]any
		if err := json.Unmarshal(res.body, &items); err != nil {
			failed = append(failed, p)
			continue
		}
		for _, it := range items {
			it["peer"] = p
			datasets = append(datasets, it)
		}
	}
	sort.Slice(datasets, func(i, j int) bool {
		a, _ := datasets[i]["name"].(string)
		b, _ := datasets[j]["name"].(string)
		return a < b
	})
	coordJSON(w, http.StatusOK, struct {
		Datasets    []map[string]any `json:"datasets"`
		Degraded    bool             `json:"degraded"`
		FailedPeers []string         `json:"failed_peers,omitempty"`
	}{Datasets: orEmpty(datasets), Degraded: len(failed) > 0, FailedPeers: failed})
}

func orEmpty(ds []map[string]any) []map[string]any {
	if ds == nil {
		return []map[string]any{}
	}
	return ds
}

// shardAnswer is one dataset's slice of a scattered query.
type shardAnswer struct {
	Dataset     string   `json:"dataset"`
	Peer        string   `json:"peer"`
	AnswerCount int      `json:"answer_count"`
	Answers     []string `json:"answers,omitempty"`
	Error       string   `json:"error,omitempty"`
}

// handleQuery routes queries. A request with "dataset" (or inline
// facts only) proxies like any single-dataset operation. A request
// with "datasets": [...] scatters: each named dataset is queried on
// its owning peer with the same program, and the per-shard answers are
// gathered into a deduplicated, sorted union — the same answer set a
// single node holding all the facts would return for queries that
// don't join across datasets. Failed shards never vanish: the response
// carries degraded plus the failed peer and dataset lists alongside
// every surviving shard's answers.
func (c *Coordinator) handleQuery(w http.ResponseWriter, r *http.Request) {
	raw, err := io.ReadAll(r.Body)
	if err != nil {
		coordJSON(w, http.StatusBadRequest, coordErrorBody{Error: err.Error(), Code: "bad_request"})
		return
	}
	var req map[string]any
	if err := json.Unmarshal(raw, &req); err != nil {
		coordJSON(w, http.StatusBadRequest, coordErrorBody{Error: fmt.Sprintf("decoding JSON: %v", err), Code: "bad_request"})
		return
	}
	list, scattered := req["datasets"].([]any)
	if !scattered {
		// Single-dataset (or inline-facts) query: proxy to the owner,
		// or to any healthy peer when no dataset pins placement.
		peer := ""
		if name, _ := req["dataset"].(string); name != "" {
			peer = c.Owner(name)
		} else {
			health := c.healthSnapshot(r.Context())
			for _, p := range c.peers {
				if health[p] {
					peer = p
					break
				}
			}
			if peer == "" {
				peer = c.peers[0]
			}
		}
		res := c.do(r.Context(), peer, http.MethodPost, "/v1/query", raw)
		w.Header().Set("X-Sqod-Peer", peer)
		if res.err != nil {
			coordJSON(w, http.StatusBadGateway, coordErrorBody{
				Error: fmt.Sprintf("peer unreachable: %v", res.err), Code: "peer_unavailable", Peer: peer})
			return
		}
		if res.contentType != "" {
			w.Header().Set("Content-Type", res.contentType)
		}
		w.WriteHeader(res.status)
		_, _ = w.Write(res.body)
		return
	}

	names := make([]string, 0, len(list))
	for _, v := range list {
		s, ok := v.(string)
		if !ok || s == "" {
			coordJSON(w, http.StatusBadRequest, coordErrorBody{Error: "datasets must be non-empty strings", Code: "bad_request"})
			return
		}
		names = append(names, s)
	}
	if len(names) == 0 {
		coordJSON(w, http.StatusBadRequest, coordErrorBody{Error: "datasets is empty", Code: "bad_request"})
		return
	}

	start := time.Now()
	shards := make([]shardAnswer, len(names))
	var wg sync.WaitGroup
	for i, name := range names {
		wg.Add(1)
		go func(i int, name string) {
			defer wg.Done()
			shards[i] = c.queryShard(r.Context(), req, name)
		}(i, name)
	}
	wg.Wait()
	c.metrics.ObserveScatter(time.Since(start))

	merged := map[string]bool{}
	var failedPeers, failedDatasets []string
	seenPeer := map[string]bool{}
	for _, sh := range shards {
		if sh.Error != "" {
			failedDatasets = append(failedDatasets, sh.Dataset)
			if !seenPeer[sh.Peer] {
				seenPeer[sh.Peer] = true
				failedPeers = append(failedPeers, sh.Peer)
			}
			continue
		}
		for _, a := range sh.Answers {
			merged[a] = true
		}
	}
	answers := make([]string, 0, len(merged))
	for a := range merged {
		answers = append(answers, a)
	}
	sort.Strings(answers)
	sort.Strings(failedPeers)
	sort.Strings(failedDatasets)
	coordJSON(w, http.StatusOK, struct {
		Answers        []string      `json:"answers"`
		AnswerCount    int           `json:"answer_count"`
		Degraded       bool          `json:"degraded"`
		FailedPeers    []string      `json:"failed_peers,omitempty"`
		FailedDatasets []string      `json:"failed_datasets,omitempty"`
		Shards         []shardAnswer `json:"shards"`
	}{
		Answers:        answers,
		AnswerCount:    len(answers),
		Degraded:       len(failedDatasets) > 0,
		FailedPeers:    failedPeers,
		FailedDatasets: failedDatasets,
		Shards:         shards,
	})
}

// queryShard runs the scattered request against one dataset's owner.
func (c *Coordinator) queryShard(ctx context.Context, req map[string]any, name string) shardAnswer {
	owner := c.Owner(name)
	sub := make(map[string]any, len(req))
	for k, v := range req {
		if k == "datasets" {
			continue
		}
		sub[k] = v
	}
	sub["dataset"] = name
	body, err := json.Marshal(sub)
	if err != nil {
		return shardAnswer{Dataset: name, Peer: owner, Error: err.Error()}
	}
	res := c.do(ctx, owner, http.MethodPost, "/v1/query", body)
	if res.err != nil {
		return shardAnswer{Dataset: name, Peer: owner, Error: res.err.Error()}
	}
	if res.status != http.StatusOK {
		msg := fmt.Sprintf("peer answered %d", res.status)
		var eb coordErrorBody
		if json.Unmarshal(res.body, &eb) == nil && eb.Error != "" {
			msg = fmt.Sprintf("peer answered %d: %s", res.status, eb.Error)
		}
		return shardAnswer{Dataset: name, Peer: owner, Error: msg}
	}
	var qr struct {
		Answers []string `json:"answers"`
	}
	if err := json.Unmarshal(res.body, &qr); err != nil {
		return shardAnswer{Dataset: name, Peer: owner, Error: fmt.Sprintf("decoding peer response: %v", err)}
	}
	return shardAnswer{Dataset: name, Peer: owner, AnswerCount: len(qr.Answers), Answers: qr.Answers}
}
