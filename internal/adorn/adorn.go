package adorn

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/ast"
	"repro/internal/order"
	"repro/internal/rewrite"
	"repro/internal/unify"
)

// RuleTriplet is a combined triplet for a rule node of P1, with full
// provenance: which triplet was chosen at each positive subgoal, and
// which triplet of the head adornment it projects to.
type RuleTriplet struct {
	IC       int
	Unmapped []int
	// Sigma maps constraint variables to rule-space terms.
	Sigma map[string]ast.Term
	// ChildChoice holds, per positive subgoal, the index of the chosen
	// triplet: for an IDB subgoal an index into the child adornment's
	// Triplets, for an EDB subgoal an index into the occurrence's
	// computed triplet list. Only triplets of the same constraint are
	// referenced.
	ChildChoice []int
	// HeadTriplet indexes the head adornment's Triplets, or -1 when
	// the triplet does not project (some required variable is not
	// visible in the head).
	HeadTriplet int
}

// key canonicalizes the rule triplet's logical content (IC, unmapped
// set, sigma) ignoring provenance.
func (rt RuleTriplet) key() string {
	var b strings.Builder
	fmt.Fprintf(&b, "I%d|", rt.IC)
	for i, u := range rt.Unmapped {
		if i > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, "%d", u)
	}
	b.WriteByte('|')
	vars := make([]string, 0, len(rt.Sigma))
	for v := range rt.Sigma {
		vars = append(vars, v)
	}
	sort.Strings(vars)
	for i, v := range vars {
		if i > 0 {
			b.WriteByte(';')
		}
		b.WriteString(v)
		b.WriteByte('=')
		b.WriteString(rt.Sigma[v].Key())
	}
	return b.String()
}

// EDBTriplet is a triplet computed for one EDB subgoal occurrence of a
// rule, in rule space.
type EDBTriplet struct {
	IC       int
	Unmapped []int
	Sigma    map[string]ast.Term
}

// AdornedRule is a rule of the adorned program P1.
type AdornedRule struct {
	// RuleIdx indexes the specialized program's rule list.
	RuleIdx int
	// Rule is the specialized rule (head predicate is the specialized
	// name; adorned names are carried alongside, not in the AST).
	Rule ast.Rule
	// HeadPred is the specialized head predicate.
	HeadPred string
	// HeadAdornID identifies the head adornment within Result.Adorn.
	HeadAdornID int
	// ChildAdornIDs holds, per positive subgoal, the adornment id of
	// the IDB child (-1 for EDB subgoals).
	ChildAdornIDs []int
	// EDBTriplets holds, per positive subgoal, the computed triplets
	// of EDB occurrences (nil for IDB subgoals), indexed per
	// constraint: EDBTriplets[j][ic] lists the triplets of subgoal j
	// for constraint ic.
	EDBTriplets []map[int][]EDBTriplet
	// Triplets are the combined rule triplets with provenance.
	Triplets []RuleTriplet
	// Residues are order residues attached to this rule: for each, the
	// negation of the conjunction must be added when emitting the rule.
	Residues [][]ast.Cmp
}

// Result of the bottom-up phase.
type Result struct {
	Spec  *SpecProgram
	Plans []rewrite.ICPlan // with constraint variables renamed apart
	// Adorn lists the adornments of every specialized predicate;
	// adornment ids index this slice.
	Adorn map[string][]*Adornment
	// Rules is the adorned rule set P1.
	Rules []*AdornedRule
	// RulesByHead indexes Rules by head predicate and adornment id.
	RulesByHead map[string]map[int][]int
	// Warnings lists skipped (unsupported) constraints.
	Warnings []string

	adornIdx map[string]map[string]int // pred -> adornment key -> id
}

// AdornID interns an adornment for a predicate and returns its id and
// whether it was new.
func (res *Result) AdornID(pred string, a *Adornment) (int, bool) {
	m, ok := res.adornIdx[pred]
	if !ok {
		m = map[string]int{}
		res.adornIdx[pred] = m
	}
	if id, ok := m[a.Key()]; ok {
		return id, false
	}
	id := len(res.Adorn[pred])
	res.Adorn[pred] = append(res.Adorn[pred], a)
	m[a.Key()] = id
	return id, true
}

// icVarPrefix keeps constraint variables disjoint from all program
// variables (the parser rejects '#', and specialization introduces
// only V<n> and suffixed names).
const icVarPrefix = "Ic#"

// BottomUp runs the bottom-up phase of Section 4.1 (with the Section
// 4.2 local-atom modification and the quasi-local order-residue
// generalization) over a specialized program.
//
// The program must already be the output of the pre-processing chain:
// rewrite.NormalizeOrder, rewrite.RewriteLocalPlanned, Specialize.
func BottomUp(sp *SpecProgram, ics []ast.IC) (*Result, error) {
	// Rename constraints apart, once and globally, so σ variable names
	// agree across all nodes.
	renamed := make([]ast.IC, len(ics))
	for i, ic := range ics {
		renamed[i] = ast.RenameIC(ic, func(v string) string {
			return fmt.Sprintf("%s%d_%s", icVarPrefix, i, v)
		})
	}
	plans := rewrite.PlanICs(renamed)

	res := &Result{
		Spec:        sp,
		Plans:       plans,
		Adorn:       map[string][]*Adornment{},
		RulesByHead: map[string]map[int][]int{},
		adornIdx:    map[string]map[string]int{},
	}
	for _, plan := range plans {
		if plan.Unsupported {
			res.Warnings = append(res.Warnings,
				fmt.Sprintf("ic %d (%s) skipped: %s", plan.Index, plan.IC, plan.Reason))
		}
	}

	idb := map[string]bool{}
	for name := range sp.Base {
		idb[name] = true
	}

	seenCombo := map[string]bool{}
	for changed := true; changed; {
		changed = false
		for ri, r := range sp.Prog.Rules {
			if combineRuleAll(res, ri, r, idb, seenCombo) {
				changed = true
			}
		}
	}
	return res, nil
}

// combineRuleAll enumerates every assignment of current adornments to
// the rule's IDB subgoals, building adorned rules for assignments not
// yet seen. It reports whether anything new was added.
func combineRuleAll(res *Result, ri int, r ast.Rule, idb map[string]bool, seen map[string]bool) bool {
	added := false
	choice := make([]int, len(r.Pos))
	var rec func(j int)
	rec = func(j int) {
		if j == len(r.Pos) {
			key := comboKey(ri, choice)
			if seen[key] {
				return
			}
			seen[key] = true
			if buildAdornedRule(res, ri, r, choice) {
				added = true
			}
			return
		}
		sub := r.Pos[j]
		if !idb[sub.Pred] {
			choice[j] = -1
			rec(j + 1)
			return
		}
		for id := range res.Adorn[sub.Pred] {
			choice[j] = id
			rec(j + 1)
		}
	}
	rec(0)
	return added
}

func comboKey(ri int, choice []int) string {
	var b strings.Builder
	fmt.Fprintf(&b, "r%d", ri)
	for _, c := range choice {
		fmt.Fprintf(&b, ",%d", c)
	}
	return b.String()
}

// buildAdornedRule computes the rule adornment Ar for one choice of
// child adornments, projects the head adornment Ap, and registers both
// (unless the combination is inconsistent). It reports whether a new
// adornment or adorned rule was added.
func buildAdornedRule(res *Result, ri int, r ast.Rule, choice []int) bool {
	ruleOrder := order.NewSet(r.Cmp...)

	// Per-subgoal, per-constraint triplet lists in rule space, plus
	// the node-space index of each (for provenance).
	type rsTriplet struct {
		unmapped []int
		sigma    map[string]ast.Term
		nodeIdx  int // index into child adornment triplets / EDB list
	}
	nSub := len(r.Pos)
	perSub := make([]map[int][]rsTriplet, nSub)
	edbTriplets := make([]map[int][]EDBTriplet, nSub)

	for j, sub := range r.Pos {
		perSub[j] = map[int][]rsTriplet{}
		if choice[j] >= 0 {
			// IDB subgoal: convert the child adornment's node-space
			// triplets to rule space via the occurrence's arguments.
			ad := res.Adorn[sub.Pred][choice[j]]
			for ti, t := range ad.Triplets {
				sigma := map[string]ast.Term{}
				ok := true
				for v, im := range t.Sigma {
					term, found := im.termAt(sub)
					if !found {
						ok = false
						break
					}
					sigma[v] = term
				}
				if !ok {
					continue
				}
				perSub[j][t.IC] = append(perSub[j][t.IC],
					rsTriplet{unmapped: t.Unmapped, sigma: sigma, nodeIdx: ti})
			}
		} else {
			// EDB subgoal: compute occurrence triplets directly.
			edbTriplets[j] = map[int][]EDBTriplet{}
			for _, plan := range res.Plans {
				if plan.Unsupported {
					continue
				}
				ts := edbOccurrenceTriplets(r, sub, plan, ruleOrder)
				edbTriplets[j][plan.Index] = ts
				for ti, t := range ts {
					perSub[j][t.IC] = append(perSub[j][t.IC],
						rsTriplet{unmapped: t.Unmapped, sigma: t.Sigma, nodeIdx: ti})
				}
			}
		}
	}

	ar := &AdornedRule{
		RuleIdx:       ri,
		Rule:          r.Clone(),
		HeadPred:      r.Head.Pred,
		ChildAdornIDs: append([]int(nil), choice...),
		EDBTriplets:   edbTriplets,
	}

	// Combine per constraint.
	type pending struct {
		rt      RuleTriplet
		headKey string // projected triplet key, "" if not projectable
		headT   Triplet
	}
	var pendings []pending
	seenRT := map[string]bool{}
	residueSeen := map[string]bool{}

	for _, plan := range res.Plans {
		if plan.Unsupported {
			continue
		}
		ic := plan.IC
		icIdx := plan.Index
		allAtoms := make([]int, len(ic.Pos))
		for i := range allAtoms {
			allAtoms[i] = i
		}
		// Every subgoal always offers at least the trivial triplet; if
		// a subgoal has no triplet list for this constraint (converted
		// away), fall back to the trivial one.
		lists := make([][]rsTriplet, nSub)
		for j := 0; j < nSub; j++ {
			lists[j] = perSub[j][icIdx]
			if len(lists[j]) == 0 {
				lists[j] = []rsTriplet{{unmapped: allAtoms, sigma: map[string]ast.Term{}, nodeIdx: trivialIdx(res, r, choice, j, icIdx, edbTriplets)}}
			}
		}
		inconsistent := false
		cur := make([]int, nSub)
		var rec func(j int, unmapped []int, sigma map[string]ast.Term) bool
		rec = func(j int, unmapped []int, sigma map[string]ast.Term) bool {
			if inconsistent {
				return false
			}
			if j == nSub {
				// Restrict sigma to variables that must stay visible.
				restricted := restrictSigma(sigma, ic, plan, unmapped)
				if len(unmapped) == 0 {
					if plan.PruneMode() {
						inconsistent = true
						return false
					}
					// Quasi-local residue: instantiate the non-local
					// order atoms; skip if some variable is invisible.
					if cmps, ok := instantiateResidue(plan.ResidueCmps, restricted); ok {
						k := ast.CmpsKey(cmps)
						if !residueSeen[k] {
							residueSeen[k] = true
							ar.Residues = append(ar.Residues, cmps)
						}
					}
					return true
				}
				rt := RuleTriplet{
					IC:          icIdx,
					Unmapped:    unmapped,
					Sigma:       restricted,
					ChildChoice: append([]int(nil), cur...),
					HeadTriplet: -1,
				}
				pk := rt.key() + "|" + comboChoiceKey(cur)
				if seenRT[pk] {
					return true
				}
				seenRT[pk] = true
				headT, ok := projectHead(rt, r.Head)
				p := pending{rt: rt}
				if ok {
					p.headKey = headT.Key()
					p.headT = headT
				}
				pendings = append(pendings, p)
				return true
			}
			for _, t := range lists[j] {
				merged, ok := mergeSigma(sigma, t.sigma)
				if !ok {
					continue
				}
				cur[j] = t.nodeIdx
				if !rec(j+1, intersect(unmapped, t.unmapped), merged) {
					return false
				}
			}
			return true
		}
		rec(0, allAtoms, map[string]ast.Term{})
		if inconsistent {
			return false // the whole adorned rule is impossible
		}
	}

	// Build the head adornment from projectable triplets (plus the
	// trivial ones, which always project).
	var headTriplets []Triplet
	for _, p := range pendings {
		if p.headKey != "" {
			headTriplets = append(headTriplets, p.headT)
		}
	}
	headAd := NewAdornment(headTriplets)
	id, _ := res.AdornID(r.Head.Pred, headAd)
	ar.HeadAdornID = id
	for _, p := range pendings {
		rt := p.rt
		if p.headKey != "" {
			rt.HeadTriplet = headAd.TripletIndex(p.headKey)
		}
		ar.Triplets = append(ar.Triplets, rt)
	}

	res.Rules = append(res.Rules, ar)
	byHead, ok := res.RulesByHead[r.Head.Pred]
	if !ok {
		byHead = map[int][]int{}
		res.RulesByHead[r.Head.Pred] = byHead
	}
	byHead[id] = append(byHead[id], len(res.Rules)-1)
	return true // a new adorned rule was added (combo was unseen)
}

func comboChoiceKey(cur []int) string {
	var b strings.Builder
	for _, c := range cur {
		fmt.Fprintf(&b, "%d,", c)
	}
	return b.String()
}

// trivialIdx returns the node-space index of the trivial triplet for
// subgoal j and the given constraint — needed when the subgoal's list
// was empty after conversion. For IDB children the trivial triplet is
// always present in the adornment; for EDB occurrences it is always
// first in the computed list.
func trivialIdx(res *Result, r ast.Rule, choice []int, j, icIdx int, edb []map[int][]EDBTriplet) int {
	if choice[j] >= 0 {
		ad := res.Adorn[r.Pos[j].Pred][choice[j]]
		for ti, t := range ad.Triplets {
			if t.IC == icIdx && len(t.Sigma) == 0 && len(t.Unmapped) == len(res.Plans[icIdx].IC.Pos) {
				return ti
			}
		}
		return -1
	}
	return 0
}

// restrictSigma keeps the variables that occur in some unmapped atom
// or in a residue order atom.
func restrictSigma(sigma map[string]ast.Term, ic ast.IC, plan rewrite.ICPlan, unmapped []int) map[string]ast.Term {
	keep := map[string]bool{}
	for _, ui := range unmapped {
		for _, v := range ic.Pos[ui].Vars(nil) {
			keep[v] = true
		}
	}
	for _, c := range plan.ResidueCmps {
		for _, v := range c.Vars(nil) {
			keep[v] = true
		}
	}
	out := map[string]ast.Term{}
	for v, t := range sigma {
		if keep[v] {
			out[v] = t
		}
	}
	return out
}

// instantiateResidue applies sigma to the residue order atoms; it
// fails if some variable has no image.
func instantiateResidue(cmps []ast.Cmp, sigma map[string]ast.Term) ([]ast.Cmp, bool) {
	resolve := func(t ast.Term) (ast.Term, bool) {
		if !t.IsVar() {
			return t, true
		}
		v, ok := sigma[t.Name]
		return v, ok
	}
	out := make([]ast.Cmp, len(cmps))
	for i, c := range cmps {
		l, ok1 := resolve(c.Left)
		r, ok2 := resolve(c.Right)
		if !ok1 || !ok2 {
			return nil, false
		}
		out[i] = ast.NewCmp(l, c.Op, r)
	}
	return out, true
}

// projectHead converts a rule-space triplet to a node-space triplet on
// the head atom. Every σ variable must be visible: a constant, or a
// variable occurring in the head.
func projectHead(rt RuleTriplet, head ast.Atom) (Triplet, bool) {
	t := Triplet{IC: rt.IC, Unmapped: rt.Unmapped, Sigma: map[string]Image{}}
	for v, term := range rt.Sigma {
		im, ok := imageOf(term, head)
		if !ok {
			return Triplet{}, false
		}
		t.Sigma[v] = im
	}
	return t, true
}

// mergeSigma unions two rule-space sigmas, requiring agreement on
// shared variables.
func mergeSigma(a, b map[string]ast.Term) (map[string]ast.Term, bool) {
	out := make(map[string]ast.Term, len(a)+len(b))
	for v, t := range a {
		out[v] = t
	}
	for v, t := range b {
		if prev, ok := out[v]; ok {
			if !prev.Equal(t) {
				return nil, false
			}
			continue
		}
		out[v] = t
	}
	return out, true
}

// intersect returns the sorted intersection of two sorted int slices.
func intersect(a, b []int) []int {
	var out []int
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		switch {
		case a[i] < b[j]:
			i++
		case a[i] > b[j]:
			j++
		default:
			out = append(out, a[i])
			i++
			j++
		}
	}
	return out
}

// edbOccurrenceTriplets computes the triplets of one EDB subgoal
// occurrence for one constraint: one triplet per homomorphism from
// each subset of the constraint's positive atoms into the occurrence
// atom, subject to the Section 4.2 local-atom conditions. The trivial
// (empty-subset) triplet is always first.
func edbOccurrenceTriplets(r ast.Rule, occ ast.Atom, plan rewrite.ICPlan, ruleOrder *order.Set) []EDBTriplet {
	ic := plan.IC
	n := len(ic.Pos)
	all := make([]int, n)
	for i := range all {
		all[i] = i
	}
	out := []EDBTriplet{{IC: plan.Index, Unmapped: all, Sigma: map[string]ast.Term{}}}
	seen := map[string]bool{out[0].sigKey(): true}

	for mask := 1; mask < 1<<n; mask++ {
		var mapped []ast.Atom
		var mappedIdx []int
		var unmapped []int
		for i := 0; i < n; i++ {
			if mask&(1<<i) != 0 {
				mapped = append(mapped, ic.Pos[i])
				mappedIdx = append(mappedIdx, i)
			} else {
				unmapped = append(unmapped, i)
			}
		}
		if !allSamePred(mapped, occ.Pred) {
			continue // Homomorphisms would also reject; skip cheaply.
		}
		unify.Homomorphisms(mapped, []ast.Atom{occ}, func(h unify.Subst) bool {
			// Section 4.2 condition: each mapped atom that anchors a
			// local atom l requires h(l) (order) or ¬h(l) (negated
			// EDB) to hold in the rule.
			for _, mi := range mappedIdx {
				for _, lp := range plan.Pairs {
					if !lp.Anchor.Equal(ic.Pos[mi]) {
						continue
					}
					if lp.OrderAtom != nil {
						if !ruleOrder.Implies(h.ApplyCmp(*lp.OrderAtom)) {
							return true // condition fails; skip mapping
						}
					} else {
						hl := h.ApplyAtom(*lp.NegEDB)
						if !atomIn(hl, r.Neg) {
							return true
						}
					}
				}
			}
			sigma := map[string]ast.Term{}
			for _, mi := range mappedIdx {
				for _, v := range ic.Pos[mi].Vars(nil) {
					if _, ok := h[v]; ok {
						sigma[v] = h.Walk(ast.V(v))
					}
				}
			}
			t := EDBTriplet{IC: plan.Index, Unmapped: unmapped,
				Sigma: restrictSigma(sigma, ic, plan, unmapped)}
			if k := t.sigKey(); !seen[k] {
				seen[k] = true
				out = append(out, t)
			}
			return true
		})
	}
	return out
}

func allSamePred(atoms []ast.Atom, pred string) bool {
	for _, a := range atoms {
		if a.Pred != pred {
			return false
		}
	}
	return true
}

func atomIn(a ast.Atom, as []ast.Atom) bool {
	for _, b := range as {
		if a.Equal(b) {
			return true
		}
	}
	return false
}

// sigKey canonicalizes an EDB triplet.
func (t EDBTriplet) sigKey() string {
	rt := RuleTriplet{IC: t.IC, Unmapped: t.Unmapped, Sigma: t.Sigma}
	return rt.key()
}
