package main

import (
	"context"
	"fmt"
	"time"

	sqo "repro"
	"repro/internal/workload"
)

// P5 — lint wall-clock per check family. The linter's cost story is
// that the cheap structural passes (L4, L5) are effectively free and
// the semantic passes (L1 satisfiability, L2 emptiness fixpoint, L3
// pairwise containment) carry all the weight, each bounded by its own
// deterministic budget. This experiment lints representative programs
// and prints the per-check timings the Report already collects.

const lintDeadcodeSrc = `
	p(X) :- a(X, Y), b(Y, X).
	q(X) :- p(X).
	r(X) :- c(X, X).
	r(X) :- p(X), c(X, X).
	?- r.
	:- a(X, Y), b(Y, Z).
`

func runP5() {
	type bench struct {
		name string
		src  string
	}
	prog, ics, _ := workload.RandomProgram(1)
	benches := []bench{
		{"figure1", figure1Src + "\n:- a(X, Y), b(Y, Z)."},
		{"goodpath", goodPathSrc + "\n:- startPoint(X), endPoint(Y), Y <= X."},
		{"deadcode", lintDeadcodeSrc},
		{"workload-seed1", prog + ics},
	}
	header("program", "rules", "findings", "L5 hygiene", "L4 guardrails", "L1 unsat", "L2 empty/dead", "L3 subsumed", "total")
	for _, b := range benches {
		unit, err := sqo.Parse(b.src)
		if err != nil {
			fmt.Printf("%s | parse error: %v\n", b.name, err)
			continue
		}
		start := time.Now()
		rep := sqo.Lint(context.Background(), unit.Program, unit.ICs, unit.Facts, sqo.LintOptions{})
		total := time.Since(start)
		fmt.Printf("%s | %d | %d | %s | %s | %s | %s | %s | %s\n",
			b.name, len(unit.Program.Rules), len(rep.Findings),
			rep.Timings["L5"].Round(time.Microsecond),
			rep.Timings["L4"].Round(time.Microsecond),
			rep.Timings["L1"].Round(time.Microsecond),
			rep.Timings["L2"].Round(time.Microsecond),
			rep.Timings["L3"].Round(time.Microsecond),
			total.Round(time.Microsecond))
	}
}
