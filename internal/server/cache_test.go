package server

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	sqo "repro"
)

const cacheTestProgram = `
	p(X, Y) :- a(X, Y).
	p(X, Y) :- b(X, Y).
	p(X, Y) :- a(X, Z), p(Z, Y).
	p(X, Y) :- b(X, Z), p(Z, Y).
	?- p.
`

const cacheTestICs = `:- a(X, Y), b(Y, Z).`

func mustKey(t *testing.T, programSrc, icsSrc string) string {
	t.Helper()
	p, err := sqo.ParseProgram(programSrc)
	if err != nil {
		t.Fatal(err)
	}
	ics, err := sqo.ParseICs(icsSrc)
	if err != nil {
		t.Fatal(err)
	}
	return CacheKey(p, ics, sqo.DefaultOptions())
}

func TestCacheKeyCanonical(t *testing.T) {
	// Whitespace and formatting differences in the source must not
	// split the cache.
	k1 := mustKey(t, cacheTestProgram, cacheTestICs)
	k2 := mustKey(t, "p(X,Y):-a(X,Y).\np(X,Y):-b(X,Y).\np(X,Y):-a(X,Z),p(Z,Y).\np(X,Y):-b(X,Z),p(Z,Y).\n?-p.", ":-a(X,Y),b(Y,Z).")
	if k1 != k2 {
		t.Fatal("formatting-only difference changed the cache key")
	}
	// Semantic differences must.
	if k1 == mustKey(t, cacheTestProgram, "") {
		t.Fatal("dropping the ic did not change the cache key")
	}
	if k1 == mustKey(t, `
		p(X, Y) :- a(X, Y).
		p(X, Y) :- a(X, Z), p(Z, Y).
		?- p.
	`, cacheTestICs) {
		t.Fatal("dropping rules did not change the cache key")
	}
	p, _ := sqo.ParseProgram(cacheTestProgram)
	ics, _ := sqo.ParseICs(cacheTestICs)
	ablated := sqo.Options{NormalizeOrder: true} // LocalRewrite/PushOrder off
	if CacheKey(p, ics, sqo.DefaultOptions()) == CacheKey(p, ics, ablated) {
		t.Fatal("options difference did not change the cache key")
	}
}

func optimizeFn(t *testing.T, programSrc, icsSrc string) func() (*sqo.Result, error) {
	t.Helper()
	p, err := sqo.ParseProgram(programSrc)
	if err != nil {
		t.Fatal(err)
	}
	ics, err := sqo.ParseICs(icsSrc)
	if err != nil {
		t.Fatal(err)
	}
	return func() (*sqo.Result, error) { return sqo.Optimize(p, ics) }
}

func TestCacheHitMissEviction(t *testing.T) {
	c := NewCache(2)
	ctx := context.Background()

	keyA := mustKey(t, cacheTestProgram, cacheTestICs)
	keyB := mustKey(t, cacheTestProgram, "")
	keyC := mustKey(t, `
		p(X, Y) :- a(X, Y).
		p(X, Y) :- a(X, Z), p(Z, Y).
		?- p.
	`, cacheTestICs)

	compute := optimizeFn(t, cacheTestProgram, cacheTestICs)

	// Miss, then hit.
	if _, hit, err := c.GetOrCompute(ctx, keyA, compute); err != nil || hit {
		t.Fatalf("first lookup: hit=%v err=%v, want miss", hit, err)
	}
	if _, hit, err := c.GetOrCompute(ctx, keyA, compute); err != nil || !hit {
		t.Fatalf("second lookup: hit=%v err=%v, want hit", hit, err)
	}

	// Fill to capacity and evict the LRU entry.
	if _, hit, _ := c.GetOrCompute(ctx, keyB, compute); hit {
		t.Fatal("keyB should miss")
	}
	// Touch A so B is the least recently used.
	if _, hit, _ := c.GetOrCompute(ctx, keyA, compute); !hit {
		t.Fatal("keyA should still be cached")
	}
	if _, hit, _ := c.GetOrCompute(ctx, keyC, compute); hit {
		t.Fatal("keyC should miss")
	}
	// B was evicted; A survived.
	if _, ok := c.get(keyB); ok {
		t.Fatal("keyB should have been evicted (LRU)")
	}
	if _, ok := c.get(keyA); !ok {
		t.Fatal("keyA should have survived eviction")
	}

	st := c.Stats()
	if st.Size != 2 {
		t.Fatalf("size = %d, want 2", st.Size)
	}
	if st.Evictions != 1 {
		t.Fatalf("evictions = %d, want 1", st.Evictions)
	}
	if st.Hits != 2 || st.Misses != 3 {
		t.Fatalf("hits/misses = %d/%d, want 2/3", st.Hits, st.Misses)
	}
}

func TestCacheSingleflight(t *testing.T) {
	c := NewCache(8)
	key := mustKey(t, cacheTestProgram, cacheTestICs)
	inner := optimizeFn(t, cacheTestProgram, cacheTestICs)

	var computes atomic.Int64
	var started sync.WaitGroup
	gate := make(chan struct{})
	compute := func() (*sqo.Result, error) {
		computes.Add(1)
		<-gate // hold the flight open until every goroutine has joined
		return inner()
	}

	const n = 16
	results := make([]*sqo.Result, n)
	hits := make([]bool, n)
	errs := make([]error, n)
	var done sync.WaitGroup
	for i := 0; i < n; i++ {
		started.Add(1)
		done.Add(1)
		go func(i int) {
			defer done.Done()
			started.Done()
			results[i], hits[i], errs[i] = c.GetOrCompute(context.Background(), key, compute)
		}(i)
	}
	started.Wait()
	// Give every goroutine time to reach the flight join.
	time.Sleep(50 * time.Millisecond)
	close(gate)
	done.Wait()

	if got := computes.Load(); got != 1 {
		t.Fatalf("compute ran %d times under %d concurrent identical requests, want 1", got, n)
	}
	misses := 0
	for i := 0; i < n; i++ {
		if errs[i] != nil {
			t.Fatalf("request %d: %v", i, errs[i])
		}
		if results[i] != results[0] {
			t.Fatalf("request %d received a different outcome pointer", i)
		}
		if !hits[i] {
			misses++
		}
	}
	if misses != 1 {
		t.Fatalf("%d requests reported a miss, want exactly 1 (the flight leader)", misses)
	}
	if c.Len() != 1 {
		t.Fatalf("cache has %d entries after coalesced requests, want 1", c.Len())
	}
	st := c.Stats()
	if st.Coalesced != n-1 {
		t.Fatalf("coalesced = %d, want %d", st.Coalesced, n-1)
	}
}

func TestCacheErrorsNotCached(t *testing.T) {
	c := NewCache(4)
	boom := errors.New("boom")
	calls := 0
	compute := func() (*sqo.Result, error) {
		calls++
		return nil, boom
	}
	for i := 0; i < 2; i++ {
		if _, _, err := c.GetOrCompute(context.Background(), "k", compute); !errors.Is(err, boom) {
			t.Fatalf("err = %v, want boom", err)
		}
	}
	if calls != 2 {
		t.Fatalf("failed computation was cached: %d calls, want 2", calls)
	}
	if c.Len() != 0 {
		t.Fatal("error outcome was stored")
	}
}

func TestCacheWaiterContextCancel(t *testing.T) {
	c := NewCache(4)
	gate := make(chan struct{})
	compute := func() (*sqo.Result, error) {
		<-gate
		return optimizeFn(t, cacheTestProgram, cacheTestICs)()
	}
	leaderDone := make(chan struct{})
	go func() {
		defer close(leaderDone)
		_, _, _ = c.GetOrCompute(context.Background(), "k", compute)
	}()
	// Wait for the leader to open the flight.
	for {
		c.mu.Lock()
		n := len(c.flights)
		c.mu.Unlock()
		if n == 1 {
			break
		}
		time.Sleep(time.Millisecond)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, _, err := c.GetOrCompute(ctx, "k", compute); !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled waiter err = %v, want context.Canceled", err)
	}
	close(gate)
	<-leaderDone
}

// TestCacheDifferentialExplain: a cached outcome must be
// indistinguishable from a freshly optimized one — same rewritten
// program, same query forest rendering.
func TestCacheDifferentialExplain(t *testing.T) {
	cases := []struct{ name, program, ics string }{
		{"transclosure", cacheTestProgram, cacheTestICs},
		{"goodpath", `
			path(X, Y) :- step(X, Y).
			path(X, Y) :- step(X, Z), path(Z, Y).
			goodPath(X, Y) :- startPoint(X), path(X, Y), endPoint(Y).
			?- goodPath.
		`, `
			:- startPoint(X), step(X, Y), X < 100.
			:- step(X, Y), X >= Y.
		`},
		{"quickstart", `
			path(X, Y) :- step(X, Y).
			path(X, Y) :- step(X, Z), path(Z, Y).
			goodPath(X, Y) :- startPoint(X), path(X, Y), endPoint(Y).
			?- goodPath.
		`, `:- startPoint(X), endPoint(Y), Y <= X.`},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			c := NewCache(8)
			key := mustKey(t, tc.program, tc.ics)
			compute := optimizeFn(t, tc.program, tc.ics)

			first, hit, err := c.GetOrCompute(context.Background(), key, compute)
			if err != nil || hit {
				t.Fatalf("prime: hit=%v err=%v", hit, err)
			}
			cached, hit, err := c.GetOrCompute(context.Background(), key, compute)
			if err != nil || !hit {
				t.Fatalf("reuse: hit=%v err=%v", hit, err)
			}
			fresh, err := compute()
			if err != nil {
				t.Fatal(err)
			}
			if got, want := sqo.Explain(cached), sqo.Explain(fresh); got != want {
				t.Fatalf("cached Explain diverges from fresh:\n--- cached ---\n%s\n--- fresh ---\n%s", got, want)
			}
			if got, want := sqo.FormatProgram(cached.Program), sqo.FormatProgram(fresh.Program); got != want {
				t.Fatalf("cached program diverges from fresh:\n--- cached ---\n%s\n--- fresh ---\n%s", got, want)
			}
			if cached != first {
				t.Fatal("cache returned a different pointer on reuse")
			}
		})
	}
}

func TestCacheCapacityFloor(t *testing.T) {
	c := NewCache(0) // clamped to 1
	compute := optimizeFn(t, cacheTestProgram, cacheTestICs)
	for i := 0; i < 3; i++ {
		key := fmt.Sprintf("k%d", i)
		if _, _, err := c.GetOrCompute(context.Background(), key, compute); err != nil {
			t.Fatal(err)
		}
	}
	if c.Len() != 1 {
		t.Fatalf("len = %d, want 1", c.Len())
	}
}
