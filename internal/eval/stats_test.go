package eval

import (
	"math"
	"testing"
)

// Small relations stay below the spill threshold, so estimates are
// exact — the property that makes cost ordering trustworthy on the
// rule-sized relations differential tests use.
func TestSketchExactOnSmallRelations(t *testing.T) {
	r := newIrel(2, 0)
	for i := uint32(0); i < 100; i++ {
		r.add([]uint32{i, i % 10})
	}
	if got := r.distinct(0); got != 100 {
		t.Fatalf("distinct(0) = %d, want exactly 100", got)
	}
	if got := r.distinct(1); got != 10 {
		t.Fatalf("distinct(1) = %d, want exactly 10", got)
	}
	// Duplicate rows never reach add (irel dedups), but duplicate
	// column values across distinct rows must not inflate the count.
	if !r.contains([]uint32{5, 5}) {
		t.Fatal("setup: row (5,5) missing")
	}
}

func TestSketchEmptyAndZeroArity(t *testing.T) {
	if got := newIrel(3, 0).distinct(1); got != 0 {
		t.Fatalf("empty relation distinct = %d, want 0", got)
	}
	z := newIrel(0, 0)
	z.add(nil) // must not panic on the zero-column row
	if z.n != 1 {
		t.Fatalf("zero-arity add failed: n=%d", z.n)
	}
}

// Skewed data: one heavy hitter next to a wide column. The heavy
// column must stay exact (1 distinct value never spills); the wide
// column spills and must estimate within linear counting's error
// bounds.
func TestSketchBoundedErrorOnSkewedData(t *testing.T) {
	r := newIrel(2, 0)
	const rows = 20000
	for i := uint32(0); i < rows; i++ {
		r.add([]uint32{7, i})
	}
	if got := r.distinct(0); got != 1 {
		t.Fatalf("constant column distinct = %d, want exactly 1", got)
	}
	got := float64(r.distinct(1))
	if err := math.Abs(got-rows) / rows; err > 0.25 {
		t.Fatalf("distinct(1) = %v, want within 25%% of %d (err %.1f%%)", got, rows, 100*err)
	}
}

// Accuracy across the load range the planner actually sees: from just
// past the spill threshold to several distinct values per sketch bit.
func TestSketchAccuracySweep(t *testing.T) {
	for _, n := range []int{200, 1000, 4096, 15000} {
		r := newIrel(1, 0)
		for i := 0; i < n; i++ {
			// Spread values so bucket collisions come from hashing, not
			// from adversarial input structure.
			r.add([]uint32{uint32(i * 2654435761)})
		}
		got := float64(r.distinct(0))
		if err := math.Abs(got-float64(n)) / float64(n); err > 0.25 {
			t.Fatalf("n=%d: distinct = %v (err %.1f%%, want <25%%)", n, got, 100*err)
		}
	}
}

// The sketch must keep counting monotonically through the exact→spill
// transition (no values lost at the boundary).
func TestSketchSpillTransition(t *testing.T) {
	r := newIrel(1, 0)
	prev := 0
	for i := 0; i < sketchExactMax*4; i++ {
		r.add([]uint32{uint32(i) * 2654435761})
		got := r.distinct(0)
		if got < prev {
			t.Fatalf("estimate regressed at i=%d: %d -> %d", i, prev, got)
		}
		prev = got
	}
	if prev < sketchExactMax*3 {
		t.Fatalf("estimate after spill too low: %d", prev)
	}
}

// Saturation guard: more distinct values than the sketch can resolve
// must return a large finite estimate, not panic or zero.
func TestSketchSaturation(t *testing.T) {
	c := &ColSketch{}
	for i := 0; i < sketchBuckets*16; i++ {
		c.Add(uint32(i)*2654435761 + 12345)
	}
	if got := c.Distinct(); got < sketchBuckets {
		t.Fatalf("saturated sketch distinct = %d, want >= %d", got, sketchBuckets)
	}
}

// Encode/decode round trip in both modes, and Equal discriminating
// mode, content, and membership differences — the properties the
// segment format of internal/store leans on.
func TestSketchEncodeRoundTrip(t *testing.T) {
	exact := &ColSketch{}
	for i := uint32(0); i < 50; i++ {
		exact.Add(i * 7)
	}
	spilled := &ColSketch{}
	for i := uint32(0); i < sketchExactMax*3; i++ {
		spilled.Add(i * 2654435761)
	}
	for _, c := range []*ColSketch{{}, exact, spilled} {
		enc := c.AppendEncoded(nil)
		dec, n, err := DecodeColSketch(enc)
		if err != nil {
			t.Fatalf("decode: %v", err)
		}
		if n != len(enc) {
			t.Fatalf("decode consumed %d of %d bytes", n, len(enc))
		}
		if !c.Equal(&dec) || !dec.Equal(c) {
			t.Fatalf("round trip not Equal (distinct %d vs %d)", c.Distinct(), dec.Distinct())
		}
	}
	if exact.Equal(spilled) {
		t.Fatal("exact and spilled sketches must differ")
	}
	other := &ColSketch{}
	for i := uint32(0); i < 50; i++ {
		other.Add(i*7 + 1)
	}
	if exact.Equal(other) {
		t.Fatal("different exact sets must not be Equal")
	}
	if _, _, err := DecodeColSketch(nil); err == nil {
		t.Fatal("decoding empty input must error")
	}
	if _, _, err := DecodeColSketch([]byte{sketchModeSpilled, 1, 2}); err == nil {
		t.Fatal("truncated bit table must error")
	}
}
