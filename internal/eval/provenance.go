package eval

import (
	"context"
	"fmt"
	"strings"

	"repro/internal/ast"
)

// Provenance records, for every derived IDB fact, one rule
// instantiation that produced it — enough to reconstruct a full
// derivation tree for any answer (the ground counterpart of the
// paper's symbolic derivation trees).
type Provenance struct {
	steps map[string]provStep
}

type provStep struct {
	rule ast.Rule   // the instantiated rule (ground)
	body []ast.Atom // ground positive subgoals (EDB and IDB)
}

// Derivation is a node of a ground derivation tree: the derived fact,
// the instantiated rule that produced it, and the sub-derivations of
// its IDB subgoals (EDB leaves have no children and no rule).
type Derivation struct {
	Fact     ast.Atom
	Rule     *ast.Rule // nil for EDB leaves
	Children []*Derivation
}

// EvalProv evaluates like Eval but also returns provenance for the
// derived facts. Provenance is compatible with parallel rounds: steps
// are built inside each task's private buffer and recorded at the
// single-threaded round barrier, in deterministic merge order, so the
// recorded derivation of every fact is the same for any worker count.
func EvalProv(p *ast.Program, edb *DB) (*DB, *Provenance, *Stats, error) {
	return evalProvOpts(context.Background(), p, edb, DefaultOptions())
}

// evalProvOpts is EvalProv with an explicit context and options,
// dispatching to the engine opts select. The differential tests use it
// to compare provenance across engines and worker counts.
func evalProvOpts(ctx context.Context, p *ast.Program, edb *DB, opts Options) (*DB, *Provenance, *Stats, error) {
	if err := p.Validate(); err != nil {
		return nil, nil, nil, err
	}
	if ctx == nil {
		ctx = context.Background()
	}
	if err := opts.validatePolicy(); err != nil {
		return nil, nil, nil, err
	}
	prov := &Provenance{steps: map[string]provStep{}}
	if opts.CompilePlans {
		idb, stats, err := evalCompiled(ctx, p, edb, opts, prov)
		if err != nil {
			return nil, nil, nil, err
		}
		return idb, prov, stats, nil
	}
	ev := &evaluator{
		ctx:     ctx,
		prog:    p,
		edb:     edb,
		idb:     NewDB(),
		opts:    opts,
		workers: opts.effectiveWorkers(),
		stats:   &Stats{},
		prov:    prov,
	}
	if err := ev.run(); err != nil {
		return nil, nil, nil, err
	}
	return ev.idb, prov, ev.stats, nil
}

// Tree reconstructs the derivation tree for a ground IDB fact. EDB
// facts yield leaves. It returns an error if the fact was never
// derived (or present).
func (pv *Provenance) Tree(fact ast.Atom, idbPreds map[string]bool, edb *DB) (*Derivation, error) {
	if !fact.Ground() {
		return nil, fmt.Errorf("eval: provenance requires a ground fact, got %s", fact)
	}
	if !idbPreds[fact.Pred] {
		if edb.Contains(fact) {
			return &Derivation{Fact: fact}, nil
		}
		return nil, fmt.Errorf("eval: EDB fact %s is not in the database", fact)
	}
	step, ok := pv.steps[fact.Key()]
	if !ok {
		return nil, fmt.Errorf("eval: no derivation recorded for %s", fact)
	}
	rule := step.rule
	node := &Derivation{Fact: fact, Rule: &rule}
	for _, sub := range step.body {
		child, err := pv.Tree(sub, idbPreds, edb)
		if err != nil {
			return nil, err
		}
		node.Children = append(node.Children, child)
	}
	return node, nil
}

// String renders the derivation tree as indented text.
func (d *Derivation) String() string {
	var b strings.Builder
	d.render(&b, 0)
	return b.String()
}

func (d *Derivation) render(b *strings.Builder, depth int) {
	ind := strings.Repeat("  ", depth)
	if d.Rule == nil {
		fmt.Fprintf(b, "%s%s  [EDB]\n", ind, d.Fact)
		return
	}
	fmt.Fprintf(b, "%s%s  [via %s]\n", ind, d.Fact, d.Rule)
	for _, c := range d.Children {
		c.render(b, depth+1)
	}
}

// Size counts the nodes of the derivation tree.
func (d *Derivation) Size() int {
	n := 1
	for _, c := range d.Children {
		n += c.Size()
	}
	return n
}

// Depth returns the height of the derivation tree (a leaf has depth 1).
func (d *Derivation) Depth() int {
	max := 0
	for _, c := range d.Children {
		if dd := c.Depth(); dd > max {
			max = dd
		}
	}
	return max + 1
}
