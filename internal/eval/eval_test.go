package eval

import (
	"fmt"
	"math/rand"
	"reflect"
	"testing"

	"repro/internal/ast"
	"repro/internal/parser"
)

func chainEDB(n int) *DB {
	db := NewDB()
	for i := 1; i < n; i++ {
		db.AddFact(ast.NewAtom("step", ast.N(float64(i)), ast.N(float64(i+1))))
	}
	return db
}

func TestTupleKeyAndString(t *testing.T) {
	a := Tuple{ast.N(1), ast.S("x")}
	b := Tuple{ast.N(1), ast.S("x")}
	c := Tuple{ast.S("1"), ast.S("x")}
	if a.Key() != b.Key() {
		t.Fatal("equal tuples must share keys")
	}
	if a.Key() == c.Key() {
		t.Fatal("number 1 and string 1 must differ")
	}
	if a.String() != "(1, x)" {
		t.Fatalf("String = %q", a.String())
	}
}

func TestRelationAddAndContains(t *testing.T) {
	r := NewRelation(2)
	if !r.Add(Tuple{ast.N(1), ast.N(2)}) {
		t.Fatal("first add must be new")
	}
	if r.Add(Tuple{ast.N(1), ast.N(2)}) {
		t.Fatal("duplicate add must return false")
	}
	if r.Len() != 1 {
		t.Fatalf("Len = %d", r.Len())
	}
	if !r.Contains(Tuple{ast.N(1), ast.N(2)}) || r.Contains(Tuple{ast.N(2), ast.N(1)}) {
		t.Fatal("Contains wrong")
	}
}

func TestRelationAddPanics(t *testing.T) {
	r := NewRelation(2)
	mustPanic(t, func() { r.Add(Tuple{ast.N(1)}) })
	mustPanic(t, func() { r.Add(Tuple{ast.N(1), ast.V("X")}) })
}

func mustPanic(t *testing.T, f func()) {
	t.Helper()
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	f()
}

func TestRelationIndexLookup(t *testing.T) {
	r := NewRelation(2)
	for i := 0; i < 10; i++ {
		r.Add(Tuple{ast.N(float64(i % 3)), ast.N(float64(i))})
	}
	ids := r.lookup([]int{0}, []ast.Term{ast.N(1)})
	if len(ids) != 4 { // i = 1, 4, 7 — wait: i%3==1 for 1,4,7 → 3 tuples... and i up to 9: 1,4,7 = 3
		// recompute: i in 0..9 with i%3==1: 1,4,7 → 3 tuples.
		if len(ids) != 3 {
			t.Fatalf("lookup returned %d ids", len(ids))
		}
	}
	// Index must be invalidated by Add.
	r.Add(Tuple{ast.N(1), ast.N(100)})
	ids = r.lookup([]int{0}, []ast.Term{ast.N(1)})
	if len(ids) != 4 {
		t.Fatalf("after add, lookup returned %d ids", len(ids))
	}
	// Compound index.
	ids = r.lookup([]int{0, 1}, []ast.Term{ast.N(1), ast.N(100)})
	if len(ids) != 1 {
		t.Fatalf("compound lookup returned %d ids", len(ids))
	}
}

func TestTransitiveClosure(t *testing.T) {
	p := parser.MustParseProgram(`
		path(X, Y) :- step(X, Y).
		path(X, Y) :- step(X, Z), path(Z, Y).
		?- path.
	`)
	db := chainEDB(5) // 1→2→3→4→5
	tuples, stats, err := Query(p, db)
	if err != nil {
		t.Fatal(err)
	}
	if len(tuples) != 10 { // C(5,2) pairs
		t.Fatalf("got %d path tuples, want 10", len(tuples))
	}
	if stats.TuplesDerived != 10 {
		t.Fatalf("TuplesDerived = %d", stats.TuplesDerived)
	}
	if stats.Iterations < 3 {
		t.Fatalf("Iterations = %d, expected several rounds", stats.Iterations)
	}
}

func TestCycleTermination(t *testing.T) {
	p := parser.MustParseProgram(`
		path(X, Y) :- step(X, Y).
		path(X, Y) :- step(X, Z), path(Z, Y).
		?- path.
	`)
	db := NewDB()
	db.AddFact(ast.NewAtom("step", ast.N(1), ast.N(2)))
	db.AddFact(ast.NewAtom("step", ast.N(2), ast.N(1)))
	tuples, _, err := Query(p, db)
	if err != nil {
		t.Fatal(err)
	}
	if len(tuples) != 4 { // (1,2),(2,1),(1,1),(2,2)
		t.Fatalf("got %d tuples, want 4", len(tuples))
	}
}

func TestComparisonFilter(t *testing.T) {
	p := parser.MustParseProgram(`
		big(X, Y) :- step(X, Y), X >= 3.
		?- big.
	`)
	db := chainEDB(6)
	tuples, _, err := Query(p, db)
	if err != nil {
		t.Fatal(err)
	}
	if len(tuples) != 3 { // (3,4), (4,5), (5,6)
		t.Fatalf("got %d tuples, want 3", len(tuples))
	}
}

func TestNegatedEDB(t *testing.T) {
	p := parser.MustParseProgram(`
		ok(X) :- node(X), !blocked(X).
		?- ok.
	`)
	db := NewDB()
	for i := 1; i <= 5; i++ {
		db.AddFact(ast.NewAtom("node", ast.N(float64(i))))
	}
	db.AddFact(ast.NewAtom("blocked", ast.N(2)))
	db.AddFact(ast.NewAtom("blocked", ast.N(4)))
	tuples, _, err := Query(p, db)
	if err != nil {
		t.Fatal(err)
	}
	if len(tuples) != 3 {
		t.Fatalf("got %d tuples, want 3", len(tuples))
	}
}

func TestNegationOnAbsentRelation(t *testing.T) {
	p := parser.MustParseProgram(`
		ok(X) :- node(X), !blocked(X).
		?- ok.
	`)
	db := NewDB()
	db.AddFact(ast.NewAtom("node", ast.N(1)))
	tuples, _, err := Query(p, db)
	if err != nil {
		t.Fatal(err)
	}
	if len(tuples) != 1 {
		t.Fatalf("blocked absent entirely: want 1 tuple, got %d", len(tuples))
	}
}

func TestZeroAryPredicates(t *testing.T) {
	p := parser.MustParseProgram(`
		halt :- reach(X), final(X).
		reach(X) :- start(X).
		reach(Y) :- reach(X), step(X, Y).
		?- halt.
	`)
	db := chainEDB(4)
	db.AddFact(ast.NewAtom("start", ast.N(1)))
	db.AddFact(ast.NewAtom("final", ast.N(4)))
	tuples, _, err := Query(p, db)
	if err != nil {
		t.Fatal(err)
	}
	if len(tuples) != 1 {
		t.Fatalf("halt should be derived, got %d tuples", len(tuples))
	}
	// Unreachable final point → empty.
	db2 := chainEDB(4)
	db2.AddFact(ast.NewAtom("start", ast.N(3)))
	db2.AddFact(ast.NewAtom("final", ast.N(1)))
	tuples2, _, err := Query(p, db2)
	if err != nil {
		t.Fatal(err)
	}
	if len(tuples2) != 0 {
		t.Fatalf("halt should not be derived, got %d tuples", len(tuples2))
	}
}

func TestConstantsInRuleHeadsAndBodies(t *testing.T) {
	p := parser.MustParseProgram(`
		special(X) :- step(X, 3).
		tagged(X, 99) :- special(X).
		?- tagged.
	`)
	db := chainEDB(5)
	tuples, _, err := Query(p, db)
	if err != nil {
		t.Fatal(err)
	}
	if len(tuples) != 1 || !tuples[0][0].Equal(ast.N(2)) || !tuples[0][1].Equal(ast.N(99)) {
		t.Fatalf("got %v", tuples)
	}
}

func TestRepeatedVariablesInSubgoal(t *testing.T) {
	p := parser.MustParseProgram(`
		loop(X) :- e(X, X).
		?- loop.
	`)
	db := NewDB()
	db.AddFact(ast.NewAtom("e", ast.N(1), ast.N(1)))
	db.AddFact(ast.NewAtom("e", ast.N(1), ast.N(2)))
	db.AddFact(ast.NewAtom("e", ast.N(3), ast.N(3)))
	tuples, _, err := Query(p, db)
	if err != nil {
		t.Fatal(err)
	}
	if len(tuples) != 2 {
		t.Fatalf("got %d tuples, want 2", len(tuples))
	}
}

func TestNaiveSeminaiveIndexedAgree(t *testing.T) {
	// Differential test over random graphs: all evaluator
	// configurations must produce identical relations.
	prog := parser.MustParseProgram(`
		path(X, Y) :- edge(X, Y).
		path(X, Y) :- edge(X, Z), path(Z, Y).
		sym(X, Y) :- path(X, Y), path(Y, X), X != Y.
		far(X, Y) :- path(X, Y), X < Y.
		?- path.
	`)
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 20; trial++ {
		db := NewDB()
		n := 3 + rng.Intn(6)
		for i := 0; i < n*2; i++ {
			db.AddFact(ast.NewAtom("edge",
				ast.N(float64(rng.Intn(n))), ast.N(float64(rng.Intn(n)))))
		}
		var results []*DB
		for _, opt := range []Options{
			{Seminaive: true, UseIndex: true},
			{Seminaive: true, UseIndex: false},
			{Seminaive: false, UseIndex: true},
			{Seminaive: false, UseIndex: false},
		} {
			idb, _, err := EvalWith(prog, db, opt)
			if err != nil {
				t.Fatal(err)
			}
			results = append(results, idb)
		}
		for _, pred := range []string{"path", "sym", "far"} {
			want := results[0].SortedFacts(pred)
			for i := 1; i < len(results); i++ {
				if got := results[i].SortedFacts(pred); !reflect.DeepEqual(got, want) {
					t.Fatalf("trial %d: config %d disagrees on %s:\n%v\nvs\n%v", trial, i, pred, got, want)
				}
			}
		}
	}
}

func TestSeminaiveFewerProbesThanNaive(t *testing.T) {
	prog := parser.MustParseProgram(`
		path(X, Y) :- step(X, Y).
		path(X, Y) :- step(X, Z), path(Z, Y).
		?- path.
	`)
	db := chainEDB(30)
	_, sn, err := EvalWith(prog, db, Options{Seminaive: true, UseIndex: true})
	if err != nil {
		t.Fatal(err)
	}
	_, nv, err := EvalWith(prog, db, Options{Seminaive: false, UseIndex: true})
	if err != nil {
		t.Fatal(err)
	}
	if sn.JoinProbes >= nv.JoinProbes {
		t.Fatalf("semi-naive (%d probes) should beat naive (%d probes)", sn.JoinProbes, nv.JoinProbes)
	}
}

func TestMaxTuplesBudget(t *testing.T) {
	prog := parser.MustParseProgram(`
		path(X, Y) :- step(X, Y).
		path(X, Y) :- step(X, Z), path(Z, Y).
		?- path.
	`)
	db := chainEDB(100)
	_, _, err := EvalWith(prog, db, Options{Seminaive: true, UseIndex: true, MaxTuples: 50})
	if err == nil {
		t.Fatal("expected budget error")
	}
}

func TestEvalRejectsInvalidProgram(t *testing.T) {
	p := &ast.Program{Rules: []ast.Rule{
		{Head: ast.NewAtom("p", ast.V("X"))}, // unsafe: X unbound
	}}
	if _, _, err := Eval(p, NewDB()); err == nil {
		t.Fatal("expected validation error")
	}
}

func TestDBCloneIndependent(t *testing.T) {
	db := NewDB()
	db.AddFact(ast.NewAtom("e", ast.N(1)))
	cp := db.Clone()
	cp.AddFact(ast.NewAtom("e", ast.N(2)))
	if db.Count("e") != 1 || cp.Count("e") != 2 {
		t.Fatal("Clone not independent")
	}
}

func TestDBPredsAndFacts(t *testing.T) {
	db := NewDB()
	db.AddFact(ast.NewAtom("b", ast.N(1)))
	db.AddFact(ast.NewAtom("a", ast.N(2)))
	if got := db.Preds(); !reflect.DeepEqual(got, []string{"a", "b"}) {
		t.Fatalf("Preds = %v", got)
	}
	if fs := db.Facts("a"); len(fs) != 1 || fs[0].String() != "a(2)" {
		t.Fatalf("Facts = %v", fs)
	}
	if db.Facts("zzz") != nil {
		t.Fatal("absent pred must return nil")
	}
}

func TestGoodPathExample(t *testing.T) {
	// Example 3.1 of the paper, evaluated directly.
	p := parser.MustParseProgram(`
		path(X, Y) :- step(X, Y).
		path(X, Y) :- step(X, Z), path(Z, Y).
		goodPath(X, Y) :- startPoint(X), path(X, Y), endPoint(Y).
		?- goodPath.
	`)
	db := chainEDB(6)
	db.AddFact(ast.NewAtom("startPoint", ast.N(1)))
	db.AddFact(ast.NewAtom("endPoint", ast.N(5)))
	tuples, _, err := Query(p, db)
	if err != nil {
		t.Fatal(err)
	}
	if len(tuples) != 1 || !tuples[0][0].Equal(ast.N(1)) || !tuples[0][1].Equal(ast.N(5)) {
		t.Fatalf("goodPath = %v", tuples)
	}
}

func TestSelectionPushingReducesProbes(t *testing.T) {
	// The optimized form of the Section 3 example: adding X >= 100 to
	// the path rules must reduce join probes when most of the graph is
	// below the threshold.
	orig := parser.MustParseProgram(`
		path(X, Y) :- step(X, Y).
		path(X, Y) :- step(X, Z), path(Z, Y).
		goodPath(X, Y) :- startPoint(X), path(X, Y), endPoint(Y).
		?- goodPath.
	`)
	opt := parser.MustParseProgram(`
		path(X, Y) :- step(X, Y), X >= 100.
		path(X, Y) :- step(X, Z), path(Z, Y), X >= 100.
		goodPath(X, Y) :- startPoint(X), path(X, Y), endPoint(Y).
		?- goodPath.
	`)
	db := NewDB()
	// Two chains: 1..50 (all below 100) and 100..140.
	for i := 1; i < 50; i++ {
		db.AddFact(ast.NewAtom("step", ast.N(float64(i)), ast.N(float64(i+1))))
	}
	for i := 100; i < 140; i++ {
		db.AddFact(ast.NewAtom("step", ast.N(float64(i)), ast.N(float64(i+1))))
	}
	db.AddFact(ast.NewAtom("startPoint", ast.N(100)))
	db.AddFact(ast.NewAtom("endPoint", ast.N(140)))

	t1, s1, err := Query(orig, db)
	if err != nil {
		t.Fatal(err)
	}
	t2, s2, err := Query(opt, db)
	if err != nil {
		t.Fatal(err)
	}
	if len(t1) != 1 || len(t2) != 1 {
		t.Fatalf("answers differ: %v vs %v", t1, t2)
	}
	if s2.TuplesDerived >= s1.TuplesDerived {
		t.Fatalf("optimized program should derive fewer tuples: %d vs %d", s2.TuplesDerived, s1.TuplesDerived)
	}
	if s2.JoinProbes >= s1.JoinProbes {
		t.Fatalf("optimized program should probe less: %d vs %d", s2.JoinProbes, s1.JoinProbes)
	}
}

func TestStatsProbesPositive(t *testing.T) {
	p := parser.MustParseProgram(`
		q(X) :- e(X).
		?- q.
	`)
	db := NewDB()
	db.AddFact(ast.NewAtom("e", ast.N(1)))
	_, stats, err := Query(p, db)
	if err != nil {
		t.Fatal(err)
	}
	if stats.JoinProbes == 0 || stats.RuleFirings != 1 || stats.TuplesDerived != 1 {
		t.Fatalf("stats = %+v", stats)
	}
}

func TestLargeChainStress(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	p := parser.MustParseProgram(`
		path(X, Y) :- step(X, Y).
		path(X, Y) :- step(X, Z), path(Z, Y).
		?- path.
	`)
	n := 150
	db := chainEDB(n)
	tuples, _, err := Query(p, db)
	if err != nil {
		t.Fatal(err)
	}
	want := n * (n - 1) / 2
	if len(tuples) != want {
		t.Fatalf("got %d tuples, want %d", len(tuples), want)
	}
}

func TestFactsStringRoundTrip(t *testing.T) {
	db := NewDB()
	facts := parser.MustParseFacts(`e(1, 2). e(2, 3). tag(1, "hello world").`)
	db.AddFacts(facts)
	if db.Count("e") != 2 || db.Count("tag") != 1 {
		t.Fatalf("counts wrong: e=%d tag=%d", db.Count("e"), db.Count("tag"))
	}
	got := db.SortedFacts("tag")
	if len(got) != 1 || got[0] != `tag(1, "hello world")` {
		t.Fatalf("SortedFacts = %v", got)
	}
}

func ExampleQuery() {
	p := parser.MustParseProgram(`
		path(X, Y) :- step(X, Y).
		path(X, Y) :- step(X, Z), path(Z, Y).
		?- path.
	`)
	db := NewDB()
	db.AddFacts(parser.MustParseFacts(`step(1, 2). step(2, 3).`))
	idb, _, _ := Eval(p, db)
	for _, f := range idb.SortedFacts("path") {
		fmt.Println(f)
	}
	// Output:
	// path(1, 2)
	// path(1, 3)
	// path(2, 3)
}
