package server

import (
	"fmt"
	"net/http"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	sqo "repro"
)

// Metrics is the server's instrumentation registry: monotonic
// counters, point-in-time gauges, and per-endpoint latency histograms,
// exposed in the Prometheus text format at /metrics. Everything is
// hand-rolled on sync/atomic — the repository takes no dependencies.
type Metrics struct {
	// Cache effectiveness.
	CacheHits      atomic.Int64
	CacheMisses    atomic.Int64
	CacheEvictions atomic.Int64
	CacheCoalesced atomic.Int64 // requests that joined an in-flight rewrite
	CacheSize      atomic.Int64

	// Admission control.
	InflightEvals       atomic.Int64 // gauge: evaluations running right now
	AdmissionRejections atomic.Int64 // fast-429s

	// Engine work, summed over completed evaluations.
	EvalRounds    atomic.Int64
	TuplesDerived atomic.Int64
	RuleFirings   atomic.Int64
	JoinProbes    atomic.Int64

	// Join-order policy of completed query evaluations (one counter
	// per policy; rendered as a labeled series).
	EvalPolicyGreedy   atomic.Int64
	EvalPolicyCost     atomic.Int64
	EvalPolicyAdaptive atomic.Int64

	// EvalMagic counts completed query evaluations that went through
	// the magic-sets demand rewrite (goal-directed point queries).
	EvalMagic atomic.Int64

	// EvalElim counts completed query evaluations that went through
	// bounded-recursion elimination (a provably bounded fixpoint
	// compiled into flat joins).
	EvalElim atomic.Int64

	// Request outcomes.
	QueryTimeouts atomic.Int64
	QueryCancels  atomic.Int64
	QueryBudgets  atomic.Int64

	// Static analysis.
	LintRuns     atomic.Int64
	LintFindings atomic.Int64

	Datasets atomic.Int64 // gauge: registered datasets

	// Mutable datasets and incremental maintenance.
	Views       atomic.Int64 // gauge: live materialized views
	FactUpdates atomic.Int64 // dataset mutations applied (facts add/delete, PUT replace)
	ViewApplies atomic.Int64 // incremental maintenance passes pushed to views

	// Durable store instrumentation; both are set once before the
	// handler serves (nil / zero when running in-memory). StoreStats
	// reads the store's live counters at scrape time.
	StoreStats      func() (walAppends, walBytes, checkpoints int64)
	RecoverySeconds float64

	mu        sync.Mutex
	requests  map[statusKey]*int64  // endpoint×code → count
	latencies map[string]*histogram // endpoint → latency histogram
	started   time.Time
}

type statusKey struct {
	endpoint string
	code     int
}

// latencyBuckets are the histogram upper bounds in seconds.
var latencyBuckets = []float64{0.001, 0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1, 2.5, 5, 10}

type histogram struct {
	counts [nBuckets + 1]atomic.Int64 // one per bucket plus +Inf
	sumNs  atomic.Int64
	total  atomic.Int64
}

const nBuckets = 12 // len(latencyBuckets); array length must be constant

func (h *histogram) observe(d time.Duration) {
	s := d.Seconds()
	i := sort.SearchFloat64s(latencyBuckets, s)
	h.counts[i].Add(1)
	h.sumNs.Add(int64(d))
	h.total.Add(1)
}

// NewMetrics returns an empty registry.
func NewMetrics() *Metrics {
	return &Metrics{
		requests:  map[statusKey]*int64{},
		latencies: map[string]*histogram{},
		started:   time.Now(),
	}
}

// ObserveRequest records one finished HTTP request.
func (m *Metrics) ObserveRequest(endpoint string, code int, d time.Duration) {
	m.mu.Lock()
	c, ok := m.requests[statusKey{endpoint, code}]
	if !ok {
		c = new(int64)
		m.requests[statusKey{endpoint, code}] = c
	}
	h, ok := m.latencies[endpoint]
	if !ok {
		h = &histogram{}
		m.latencies[endpoint] = h
	}
	m.mu.Unlock()
	atomic.AddInt64(c, 1)
	h.observe(d)
}

// AddStats folds one evaluation's engine counters into the registry.
func (m *Metrics) AddStats(rounds int, derived, firings, probes int64) {
	m.EvalRounds.Add(int64(rounds))
	m.TuplesDerived.Add(derived)
	m.RuleFirings.Add(firings)
	m.JoinProbes.Add(probes)
}

// AddPolicy counts one completed evaluation under its join-order
// policy ("" counts as greedy, matching the engine's resolution).
func (m *Metrics) AddPolicy(policy sqo.JoinOrderPolicy) {
	switch policy {
	case sqo.PolicyCost:
		m.EvalPolicyCost.Add(1)
	case sqo.PolicyAdaptive:
		m.EvalPolicyAdaptive.Add(1)
	default:
		m.EvalPolicyGreedy.Add(1)
	}
}

// ServeHTTP renders the registry in the Prometheus text exposition
// format (version 0.0.4).
func (m *Metrics) ServeHTTP(w http.ResponseWriter, _ *http.Request) {
	var b strings.Builder

	counter := func(name, help string, v int64) {
		fmt.Fprintf(&b, "# HELP %s %s\n# TYPE %s counter\n%s %d\n", name, help, name, name, v)
	}
	gauge := func(name, help string, v int64) {
		fmt.Fprintf(&b, "# HELP %s %s\n# TYPE %s gauge\n%s %d\n", name, help, name, name, v)
	}

	counter("sqod_cache_hits_total", "Optimized-program cache hits.", m.CacheHits.Load())
	counter("sqod_cache_misses_total", "Optimized-program cache misses (fresh rewrites).", m.CacheMisses.Load())
	counter("sqod_cache_evictions_total", "LRU evictions from the optimized-program cache.", m.CacheEvictions.Load())
	counter("sqod_cache_coalesced_total", "Requests coalesced onto an in-flight identical rewrite.", m.CacheCoalesced.Load())
	gauge("sqod_cache_entries", "Optimized programs currently cached.", m.CacheSize.Load())

	gauge("sqod_inflight_evals", "Evaluations currently running (admission queue depth).", m.InflightEvals.Load())
	counter("sqod_admission_rejections_total", "Requests rejected with 429 by admission control.", m.AdmissionRejections.Load())

	counter("sqod_eval_rounds_total", "Fixpoint rounds executed across all evaluations.", m.EvalRounds.Load())
	counter("sqod_tuples_derived_total", "Distinct IDB tuples derived across all evaluations.", m.TuplesDerived.Load())
	counter("sqod_rule_firings_total", "Rule firings across all evaluations.", m.RuleFirings.Load())
	counter("sqod_join_probes_total", "Join probes across all evaluations.", m.JoinProbes.Load())

	b.WriteString("# HELP sqod_eval_policy_total Completed evaluations by join-order policy.\n# TYPE sqod_eval_policy_total counter\n")
	fmt.Fprintf(&b, "sqod_eval_policy_total{policy=\"greedy\"} %d\n", m.EvalPolicyGreedy.Load())
	fmt.Fprintf(&b, "sqod_eval_policy_total{policy=\"cost\"} %d\n", m.EvalPolicyCost.Load())
	fmt.Fprintf(&b, "sqod_eval_policy_total{policy=\"adaptive\"} %d\n", m.EvalPolicyAdaptive.Load())

	counter("sqod_eval_magic_total", "Queries evaluated via the magic-sets demand rewrite.", m.EvalMagic.Load())
	counter("sqod_eval_elim_total", "Queries evaluated via bounded-recursion elimination.", m.EvalElim.Load())

	counter("sqod_query_timeouts_total", "Queries stopped by deadline expiry.", m.QueryTimeouts.Load())
	counter("sqod_query_cancels_total", "Queries stopped by client cancellation.", m.QueryCancels.Load())
	counter("sqod_query_budget_exceeded_total", "Queries stopped by the derived-tuple budget.", m.QueryBudgets.Load())

	counter("sqod_lint_runs_total", "Lint runs (POST /v1/lint plus registration diagnostics).", m.LintRuns.Load())
	counter("sqod_lint_findings_total", "Findings emitted across all lint runs.", m.LintFindings.Load())

	gauge("sqod_datasets", "Registered fact datasets.", m.Datasets.Load())
	gauge("sqod_views", "Live materialized views.", m.Views.Load())
	counter("sqod_fact_updates_total", "Dataset mutations applied.", m.FactUpdates.Load())
	counter("sqod_view_applies_total", "Incremental maintenance passes pushed to views.", m.ViewApplies.Load())
	if m.StoreStats != nil {
		appends, bytes, checkpoints := m.StoreStats()
		counter("sqod_wal_appends_total", "Operations appended to the write-ahead log.", appends)
		counter("sqod_wal_bytes_total", "Bytes appended to the write-ahead log (framing included).", bytes)
		counter("sqod_checkpoints_total", "Checkpoint segments written.", checkpoints)
		fmt.Fprintf(&b, "# HELP sqod_recovery_seconds Wall-clock seconds spent recovering durable state at startup.\n# TYPE sqod_recovery_seconds gauge\nsqod_recovery_seconds %.6f\n",
			m.RecoverySeconds)
	}
	fmt.Fprintf(&b, "# HELP sqod_uptime_seconds Seconds since the server started.\n# TYPE sqod_uptime_seconds gauge\nsqod_uptime_seconds %.3f\n",
		time.Since(m.started).Seconds())

	m.mu.Lock()
	reqKeys := make([]statusKey, 0, len(m.requests))
	for k := range m.requests {
		reqKeys = append(reqKeys, k)
	}
	latKeys := make([]string, 0, len(m.latencies))
	for k := range m.latencies {
		latKeys = append(latKeys, k)
	}
	m.mu.Unlock()
	sort.Slice(reqKeys, func(i, j int) bool {
		if reqKeys[i].endpoint != reqKeys[j].endpoint {
			return reqKeys[i].endpoint < reqKeys[j].endpoint
		}
		return reqKeys[i].code < reqKeys[j].code
	})
	sort.Strings(latKeys)

	b.WriteString("# HELP sqod_requests_total HTTP requests served.\n# TYPE sqod_requests_total counter\n")
	for _, k := range reqKeys {
		m.mu.Lock()
		v := atomic.LoadInt64(m.requests[k])
		m.mu.Unlock()
		fmt.Fprintf(&b, "sqod_requests_total{endpoint=%q,code=\"%d\"} %d\n", k.endpoint, k.code, v)
	}

	b.WriteString("# HELP sqod_request_seconds HTTP request latency.\n# TYPE sqod_request_seconds histogram\n")
	for _, k := range latKeys {
		m.mu.Lock()
		h := m.latencies[k]
		m.mu.Unlock()
		cum := int64(0)
		for i, ub := range latencyBuckets {
			cum += h.counts[i].Load()
			fmt.Fprintf(&b, "sqod_request_seconds_bucket{endpoint=%q,le=\"%g\"} %d\n", k, ub, cum)
		}
		cum += h.counts[nBuckets].Load()
		fmt.Fprintf(&b, "sqod_request_seconds_bucket{endpoint=%q,le=\"+Inf\"} %d\n", k, cum)
		fmt.Fprintf(&b, "sqod_request_seconds_sum{endpoint=%q} %.6f\n", k, float64(h.sumNs.Load())/1e9)
		fmt.Fprintf(&b, "sqod_request_seconds_count{endpoint=%q} %d\n", k, h.total.Load())
	}

	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	_, _ = w.Write([]byte(b.String()))
}
