package eval

// The compiled-plan engine (Options.CompilePlans). It mirrors the
// legacy evaluator's round structure — snapshot rounds, per-task output
// buffers, merge strictly in task order — but runs every hot path over
// interned data: rules become plans (plan.go), tuples become flat
// []uint32 rows (intern.go), and the per-candidate binding is a flat
// slot array instead of a map. Answers, Stats, and provenance are
// bit-identical to the legacy engine for every worker count; the
// differential tests in compiled_test.go enforce this.

import (
	"context"
	"fmt"
	"sort"
	"strings"
	"sync"
	"sync/atomic"

	"repro/internal/ast"
)

// evalCompiled evaluates p over edb with the compiled-plan engine,
// recording provenance steps into prov when non-nil. The caller has
// already validated p.
func evalCompiled(ctx context.Context, p *ast.Program, edb *DB, opts Options, prov *Provenance) (*DB, *Stats, error) {
	ev := &cEvaluator{
		ctx:     ctx,
		prog:    p,
		opts:    opts,
		workers: opts.effectiveWorkers(),
		stats:   &Stats{},
		prov:    prov,
	}
	if err := ev.prepare(edb); err != nil {
		return nil, nil, err
	}
	if err := ev.run(); err != nil {
		return nil, nil, err
	}
	return ev.publicIDB(), ev.stats, nil
}

type cEvaluator struct {
	ctx     context.Context
	prog    *ast.Program
	opts    Options
	workers int
	stats   *Stats
	idbPr   map[string]bool
	in      *interner
	edb     map[string]*irel
	idb     map[string]*irel
	delta   map[string]*irel // tuples new in the previous round (semi-naive)
	plans   map[planKey]*plan
	prov    *Provenance
}

// prepare compiles the program's plans and interns the EDB relations
// the program references. Interning is O(EDB) with small constants and
// happens once per evaluation, before any join runs.
func (ev *cEvaluator) prepare(edb *DB) error {
	ev.idbPr = ev.prog.IDB()
	arity, err := ev.prog.PredArity()
	if err != nil {
		return err
	}
	ev.in = newInterner()
	ev.plans = map[planKey]*plan{}
	for i, r := range ev.prog.Rules {
		ev.plans[planKey{i, -1}] = compilePlan(ev.in, ev.idbPr, r, i, -1)
		for occ, a := range r.Pos {
			if ev.idbPr[a.Pred] {
				ev.plans[planKey{i, occ}] = compilePlan(ev.in, ev.idbPr, r, i, occ)
			}
		}
	}

	referenced := map[string]bool{}
	for _, r := range ev.prog.Rules {
		for _, a := range r.Pos {
			if !ev.idbPr[a.Pred] {
				referenced[a.Pred] = true
			}
		}
		for _, a := range r.Neg {
			referenced[a.Pred] = true
		}
	}
	preds := make([]string, 0, len(referenced))
	for pred := range referenced {
		preds = append(preds, pred)
	}
	sort.Strings(preds) // deterministic interning order
	ev.edb = make(map[string]*irel, len(preds))
	for _, pred := range preds {
		rel := edb.Lookup(pred)
		if rel == nil {
			continue
		}
		ir := newIrel(rel.Arity, rel.Len())
		buf := make([]uint32, rel.Arity)
		for _, t := range rel.tuples {
			for j, v := range t {
				buf[j] = ev.in.intern(v)
			}
			ir.add(buf)
		}
		ev.edb[pred] = ir
	}

	ev.idb = make(map[string]*irel, len(ev.idbPr))
	for pred := range ev.idbPr {
		ev.idb[pred] = newIrel(arity[pred], 0)
	}
	return nil
}

func (ev *cEvaluator) run() error {
	if ev.opts.Seminaive {
		return ev.runSeminaive()
	}
	return ev.runNaive()
}

// firstRelLen mirrors evaluator.firstRelLen, except that the depth-0
// relation is the plan's first subgoal in greedy order (which the
// partition ranges apply to), not necessarily Pos[0].
func (ev *cEvaluator) firstRelLen(ruleIdx, occ int, prevDelta map[string]*irel) int {
	pl := ev.plans[planKey{ruleIdx, occ}]
	if len(pl.subs) == 0 {
		return 0
	}
	rel := ev.subRel(&pl.subs[0], prevDelta)
	if rel == nil {
		return 0
	}
	return rel.n
}

func (ev *cEvaluator) subRel(sp *subPlan, prevDelta map[string]*irel) *irel {
	switch sp.src {
	case srcDelta:
		return prevDelta[sp.pred]
	case srcIDB:
		return ev.idb[sp.pred]
	default:
		return ev.edb[sp.pred]
	}
}

func (ev *cEvaluator) newDelta() map[string]*irel {
	d := make(map[string]*irel, len(ev.idb))
	for pred, ir := range ev.idb {
		d[pred] = newIrel(ir.arity, 0)
	}
	return d
}

func deltaTotal(d map[string]*irel) int {
	n := 0
	for _, ir := range d {
		n += ir.n
	}
	return n
}

func (ev *cEvaluator) runNaive() error {
	for {
		if err := ev.ctx.Err(); err != nil {
			return err
		}
		ev.stats.Iterations++
		before := ev.stats.TuplesDerived
		var tasks []task
		for i := range ev.prog.Rules {
			tasks = appendPartitioned(tasks, task{ruleIdx: i, occ: -1}, ev.firstRelLen(i, -1, nil), ev.workers)
		}
		if err := ev.runRound(tasks, nil); err != nil {
			return err
		}
		if ev.stats.TuplesDerived == before {
			return nil
		}
	}
}

func (ev *cEvaluator) runSeminaive() error {
	ev.delta = ev.newDelta()
	if err := ev.ctx.Err(); err != nil {
		return err
	}
	ev.stats.Iterations++
	var tasks []task
	for i, r := range ev.prog.Rules {
		if !r.IsInit(ev.idbPr) {
			continue
		}
		tasks = appendPartitioned(tasks, task{ruleIdx: i, occ: -1}, ev.firstRelLen(i, -1, nil), ev.workers)
	}
	if err := ev.runRound(tasks, nil); err != nil {
		return err
	}
	for {
		if deltaTotal(ev.delta) == 0 {
			return nil
		}
		if err := ev.ctx.Err(); err != nil {
			return err
		}
		prevDelta := ev.delta
		ev.delta = ev.newDelta()
		ev.stats.Iterations++
		tasks = tasks[:0]
		for i, r := range ev.prog.Rules {
			for occ, a := range r.Pos {
				if !ev.idbPr[a.Pred] {
					continue
				}
				tasks = appendPartitioned(tasks, task{ruleIdx: i, occ: occ}, ev.firstRelLen(i, occ, prevDelta), ev.workers)
			}
		}
		if err := ev.runRound(tasks, prevDelta); err != nil {
			return err
		}
	}
}

// cTaskResult is the private output buffer of one compiled task: the
// deduplicated head rows (flat, head-arity values each) and, when
// provenance is on, the slot-binding snapshot per head.
type cTaskResult struct {
	headRows []uint32
	nHeads   int
	snaps    []uint32 // nSlots values per head
	probes   int64
	firings  int64
	err      error
}

// runRound mirrors evaluator.runRound: bounded worker pool, results
// merged strictly in task order at the barrier.
func (ev *cEvaluator) runRound(tasks []task, prevDelta map[string]*irel) error {
	results := make([]cTaskResult, len(tasks))
	workers := ev.workers
	if workers > len(tasks) {
		workers = len(tasks)
	}
	if workers > 1 {
		var next atomic.Int64
		var wg sync.WaitGroup
		wg.Add(workers)
		for w := 0; w < workers; w++ {
			go func() {
				defer wg.Done()
				for {
					i := int(next.Add(1)) - 1
					if i >= len(tasks) {
						return
					}
					results[i] = ev.runTask(tasks[i], prevDelta)
				}
			}()
		}
		wg.Wait()
	} else {
		for i, t := range tasks {
			results[i] = ev.runTask(t, prevDelta)
			if results[i].err != nil {
				break
			}
		}
	}

	roundDelta := map[string]int64{}
	for i := range results {
		res := &results[i]
		if res.err != nil {
			return res.err
		}
		ev.stats.JoinProbes += res.probes
		ev.stats.RuleFirings += res.firings
		pl := ev.plans[planKey{tasks[i].ruleIdx, tasks[i].occ}]
		ha := len(pl.head.isConst)
		idbRel := ev.idb[pl.head.pred]
		for h := 0; h < res.nHeads; h++ {
			row := res.headRows[h*ha : (h+1)*ha]
			if !idbRel.add(row) {
				continue // another task derived it first this round
			}
			ev.stats.TuplesDerived++
			roundDelta[pl.head.pred]++
			if ev.delta != nil {
				ev.delta[pl.head.pred].add(row)
			}
			if ev.prov != nil {
				snap := res.snaps[h*pl.nSlots : (h+1)*pl.nSlots]
				fact, step := ev.materialize(pl, snap)
				ev.prov.steps[fact.Key()] = step
			}
		}
	}
	ev.stats.RoundDeltas = append(ev.stats.RoundDeltas, roundDelta)
	if ev.opts.MaxTuples > 0 && ev.stats.TuplesDerived > ev.opts.MaxTuples {
		return fmt.Errorf("eval: %w (budget %d)", ErrBudget, ev.opts.MaxTuples)
	}
	return nil
}

// materialize converts a head row's slot snapshot back to the ground
// ast rule instance the legacy engine records, producing byte-identical
// provenance steps. Only runs at the merge for facts that are new.
func (ev *cEvaluator) materialize(pl *plan, snap []uint32) (ast.Atom, provStep) {
	head := ev.groundTpl(pl.head, snap)
	inst := ast.Rule{Head: head}
	for _, tpl := range pl.posTpls {
		inst.Pos = append(inst.Pos, ev.groundTpl(tpl, snap))
	}
	for _, tpl := range pl.negTpls {
		inst.Neg = append(inst.Neg, ev.groundTpl(tpl, snap))
	}
	return head, provStep{rule: inst, body: inst.Pos}
}

func (ev *cEvaluator) groundTpl(tpl atomTpl, snap []uint32) ast.Atom {
	args := make([]ast.Term, len(tpl.vals))
	for j, v := range tpl.vals {
		if tpl.isConst[j] {
			args[j] = ev.in.term(v)
		} else {
			args[j] = ev.in.term(snap[v])
		}
	}
	return ast.Atom{Pred: tpl.pred, Args: args}
}

// cTaskRun is the per-task evaluation state: a flat slot binding, a
// private output buffer with its dedup set, and reusable probe/negation
// scratch buffers. No allocation happens per candidate tuple.
type cTaskRun struct {
	ev        *cEvaluator
	pl        *plan
	delta     map[string]*irel
	lo, hi    int
	binding   []uint32
	probeBufs [][]uint32 // per-depth bound-value scratch
	negBuf    []uint32
	headBuf   []uint32
	seen      rowHash // dedups headRows within this task
	res       cTaskResult
	base      int64
}

func (ev *cEvaluator) runTask(t task, prevDelta map[string]*irel) cTaskResult {
	pl := ev.plans[planKey{t.ruleIdx, t.occ}]
	tr := &cTaskRun{
		ev:    ev,
		pl:    pl,
		delta: prevDelta,
		lo:    t.lo,
		hi:    t.hi,
		base:  ev.stats.TuplesDerived,
	}
	tr.binding = make([]uint32, pl.nSlots)
	tr.probeBufs = make([][]uint32, len(pl.subs))
	for i := range pl.subs {
		if n := len(pl.subs[i].boundPos); n > 0 {
			tr.probeBufs[i] = make([]uint32, n)
		}
	}
	if pl.maxNegArity > 0 {
		tr.negBuf = make([]uint32, pl.maxNegArity)
	}
	ha := len(pl.head.isConst)
	tr.headBuf = make([]uint32, ha)
	tr.seen = rowHash{data: &tr.res.headRows, arity: ha}
	if err := tr.joinFrom(0); err != nil {
		tr.res.err = err
	}
	return tr.res
}

// joinFrom extends the slot binding over the plan's subgoals starting
// at the given join depth.
func (tr *cTaskRun) joinFrom(depth int) error {
	ev := tr.ev
	if ev.opts.MaxTuples > 0 && tr.base+int64(tr.res.nHeads) > ev.opts.MaxTuples {
		return fmt.Errorf("eval: %w (budget %d)", ErrBudget, ev.opts.MaxTuples)
	}
	pl := tr.pl
	if depth == len(pl.subs) {
		return tr.finish()
	}
	sp := &pl.subs[depth]
	rel := ev.subRel(sp, tr.delta)
	if rel == nil || rel.n == 0 {
		return nil
	}
	lo, hi := 0, rel.n
	if depth == 0 && tr.hi > 0 {
		lo, hi = tr.lo, tr.hi
		if hi > rel.n {
			hi = rel.n
		}
	}
	if ev.opts.UseIndex && sp.indexable && len(sp.boundPos) > 0 {
		vals := tr.probeBufs[depth]
		for k, c := range sp.boundConst {
			if c {
				vals[k] = sp.boundVal[k]
			} else {
				vals[k] = tr.binding[sp.boundVal[k]]
			}
		}
		ix := rel.index(sp.mask, sp.boundPos)
		// An empty lookup is a successful (and final) answer; never
		// fall back to a scan.
		for ri := ix.lookup(rel, vals); ri >= 0; ri = ix.next[ri] {
			if int(ri) < lo || int(ri) >= hi {
				continue
			}
			if err := tr.tryRow(depth, rel.row(int(ri)), false); err != nil {
				return err
			}
		}
		return nil
	}
	for i := lo; i < hi; i++ {
		if err := tr.tryRow(depth, rel.row(i), true); err != nil {
			return err
		}
	}
	return nil
}

// tryRow is the compiled tryTuple: one candidate row at one depth.
// verify is true on the scan path, where bound positions must be
// re-checked; index candidates match them by construction (the index
// compares values exactly, so collisions never reach here).
func (tr *cTaskRun) tryRow(depth int, row []uint32, verify bool) error {
	tr.res.probes++
	if tr.res.probes&cancelPollMask == 0 {
		if err := tr.ev.ctx.Err(); err != nil {
			return err
		}
	}
	sp := &tr.pl.subs[depth]
	if verify {
		for k, p := range sp.boundPos {
			want := sp.boundVal[k]
			if !sp.boundConst[k] {
				want = tr.binding[want]
			}
			if row[p] != want {
				return nil
			}
		}
	}
	// Bind fresh slots, then check repeated in-atom occurrences. No
	// undo is needed on backtrack: a slot is only read at depths where
	// the plan statically bound it.
	for k, p := range sp.bindPos {
		tr.binding[sp.bindSlot[k]] = row[p]
	}
	for k, p := range sp.checkPos {
		if row[p] != tr.binding[sp.checkSlot[k]] {
			return nil
		}
	}
	for i := range sp.cmps {
		if !tr.evalCmp(&sp.cmps[i]) {
			return nil
		}
	}
	for i := range sp.negs {
		if tr.negContains(&sp.negs[i]) {
			return nil
		}
	}
	return tr.joinFrom(depth + 1)
}

// evalCmp evaluates a compiled comparison. Equality on canonical intern
// ids is id equality; the four order operators delegate to Term.Compare
// on the resolved terms.
func (tr *cTaskRun) evalCmp(c *cmpPlan) bool {
	l, r := c.l, c.r
	if !c.lConst {
		l = tr.binding[l]
	}
	if !c.rConst {
		r = tr.binding[r]
	}
	switch c.op {
	case ast.EQ:
		return l == r
	case ast.NE:
		return l != r
	}
	return ast.NewCmp(tr.ev.in.term(l), c.op, tr.ev.in.term(r)).Eval()
}

// negContains reports whether the ground instance of a negated subgoal
// is present in the EDB (negation ranges over EDB relations only,
// matching filtersHold).
func (tr *cTaskRun) negContains(tpl *atomTpl) bool {
	rel := tr.ev.edb[tpl.pred]
	if rel == nil {
		return false
	}
	buf := tr.negBuf[:len(tpl.isConst)]
	for j, c := range tpl.isConst {
		if c {
			buf[j] = tpl.vals[j]
		} else {
			buf[j] = tr.binding[tpl.vals[j]]
		}
	}
	return rel.contains(buf)
}

// finish emits the head row for a complete binding, mirroring
// finishRule: firings count before dedup, per-task dedup plus a
// snapshot-IDB membership check.
func (tr *cTaskRun) finish() error {
	pl := tr.pl
	for i := range pl.finishCmps {
		if !tr.evalCmp(&pl.finishCmps[i]) {
			return nil
		}
	}
	for i := range pl.finishNegs {
		if tr.negContains(&pl.finishNegs[i]) {
			return nil
		}
	}
	tr.res.firings++
	row := tr.headBuf
	for j, c := range pl.head.isConst {
		if c {
			row[j] = pl.head.vals[j]
		} else {
			row[j] = tr.binding[pl.head.vals[j]]
		}
	}
	slot, hv, found := tr.seen.insertLookup(row)
	if found {
		return nil
	}
	if rel := tr.ev.idb[pl.head.pred]; rel != nil && rel.contains(row) {
		return nil
	}
	idx := int32(tr.res.nHeads)
	tr.res.headRows = append(tr.res.headRows, row...)
	tr.res.nHeads++
	tr.seen.place(slot, hv, idx)
	if tr.ev.prov != nil {
		tr.res.snaps = append(tr.res.snaps, tr.binding...)
	}
	return nil
}

// publicIDB converts the interned IDB back to a public DB. Rows are
// already deduplicated, so tuples and seen keys are written directly;
// the keys reuse each distinct term's rendered Term.Key, making the
// conversion linear with small constants.
func (ev *cEvaluator) publicIDB() *DB {
	out := NewDB()
	var b strings.Builder
	for pred, ir := range ev.idb {
		rel := NewRelation(ir.arity)
		rel.tuples = make([]Tuple, 0, ir.n)
		for i := 0; i < ir.n; i++ {
			row := ir.row(i)
			t := make(Tuple, ir.arity)
			for j, id := range row {
				t[j] = ev.in.term(id)
			}
			rel.seen[ev.in.rowKey(&b, row)] = true
			rel.tuples = append(rel.tuples, t)
		}
		out.rels[pred] = rel
	}
	return out
}
