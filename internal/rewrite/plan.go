package rewrite

import "repro/internal/ast"

// ICPlan classifies one integrity constraint for the query-tree
// algorithm:
//
//   - Pure constraints (no order atoms, no negated atoms) prune via
//     inconsistent adornments (Section 4.1).
//   - Local order atoms and local negated EDB atoms are anchored to a
//     positive atom and enforced at mapping time after the RewriteLocal
//     case split (Section 4.2, Theorem 4.2).
//   - Non-local order atoms are carried as a residue: when the
//     constraint's EDB atoms map fully within a rule, the negation of
//     the instantiated residue is attached to that rule (the
//     quasi-local generalization sketched at the end of Section 4.2 and
//     exercised by Example 3.1).
//   - A non-local negated EDB atom makes the constraint Unsupported —
//     the undecidable territory of Theorem 5.4; such constraints are
//     skipped (soundly: skipping an ic only forgoes optimization).
type ICPlan struct {
	// Index is the constraint's position in the input list.
	Index int
	IC    ast.IC
	// Pairs anchors every local order atom and local negated atom.
	Pairs []LocalPair
	// ResidueCmps are the non-local order atoms, to be handled by
	// residue attachment. Empty for prune-mode constraints.
	ResidueCmps []ast.Cmp
	// Unsupported marks constraints with a non-local negated atom.
	Unsupported bool
	// Reason explains why the constraint is unsupported.
	Reason string
}

// PruneMode reports whether a fully-mapped constraint makes a
// derivation inconsistent outright (no residue remains).
func (p ICPlan) PruneMode() bool { return len(p.ResidueCmps) == 0 }

// PlanICs classifies every constraint. It never fails: constraints
// that cannot be handled are returned with Unsupported set.
func PlanICs(ics []ast.IC) []ICPlan {
	plans := make([]ICPlan, len(ics))
	for i, ic := range ics {
		plan := ICPlan{Index: i, IC: ic}
		for ci := range ic.Cmp {
			c := ic.Cmp[ci]
			if a, ok := anchorFor(ic, c.Vars(nil)); ok {
				cc := c
				plan.Pairs = append(plan.Pairs, LocalPair{ICIndex: i, Anchor: a, OrderAtom: &cc})
			} else {
				plan.ResidueCmps = append(plan.ResidueCmps, c)
			}
		}
		for ni := range ic.Neg {
			nAtom := ic.Neg[ni]
			if a, ok := anchorFor(ic, nAtom.Vars(nil)); ok {
				na := nAtom.Clone()
				plan.Pairs = append(plan.Pairs, LocalPair{ICIndex: i, Anchor: a, NegEDB: &na})
			} else {
				plan.Unsupported = true
				plan.Reason = "negated atom !" + nAtom.String() + " is not local"
			}
		}
		if len(ic.Pos) == 0 {
			plan.Unsupported = true
			plan.Reason = "constraint has no positive atoms"
		}
		plans[i] = plan
	}
	return plans
}

// RewriteLocalPlanned is RewriteLocal driven by pre-computed plans:
// only pairs of supported constraints trigger case splits.
func RewriteLocalPlanned(p *ast.Program, plans []ICPlan) *ast.Program {
	var pairs []LocalPair
	for _, plan := range plans {
		if plan.Unsupported {
			continue
		}
		pairs = append(pairs, plan.Pairs...)
	}
	idb := p.IDB()
	work := make([]ast.Rule, len(p.Rules))
	copy(work, p.Rules)
	var done []ast.Rule
	for len(work) > 0 {
		r := work[0]
		work = work[1:]
		split := false
		for _, lp := range pairs {
			r1, r2, didSplit := splitOn(r, lp, idb)
			if didSplit {
				if nr, ok := NormalizeRule(r1); ok {
					work = append(work, nr)
				}
				if nr, ok := NormalizeRule(r2); ok {
					work = append(work, nr)
				}
				split = true
				break
			}
		}
		if !split {
			done = append(done, r)
		}
	}
	return &ast.Program{Query: p.Query, Rules: done}
}
