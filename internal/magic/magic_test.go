package magic

import (
	"errors"
	"strings"
	"testing"

	"repro/internal/ast"
	"repro/internal/parser"
)

func mustParse(t *testing.T, src string) *ast.Program {
	t.Helper()
	p, err := parser.ParseProgram(src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	return p
}

// ruleStrings renders every rewritten rule for shape assertions.
func ruleStrings(p *ast.Program) []string {
	out := make([]string, len(p.Rules))
	for i, r := range p.Rules {
		out[i] = r.String()
	}
	return out
}

func containsRule(t *testing.T, p *ast.Program, want string) {
	t.Helper()
	for _, s := range ruleStrings(p) {
		if s == want {
			return
		}
	}
	t.Errorf("rewritten program missing rule %q; have:\n  %s",
		want, strings.Join(ruleStrings(p), "\n  "))
}

func TestRewriteRightLinearTC(t *testing.T) {
	p := mustParse(t, `
		path(X, Y) :- edge(X, Y).
		path(X, Y) :- edge(X, Z), path(Z, Y).
		?- path(a, Y).
	`)
	res, err := Rewrite(p)
	if err != nil {
		t.Fatalf("Rewrite: %v", err)
	}
	if res.Pattern != "bf" {
		t.Errorf("pattern = %q, want bf", res.Pattern)
	}
	out := res.Program
	if out.Query != "path#bf" {
		t.Errorf("query = %q, want path#bf", out.Query)
	}
	// The seed must be a rule (bodiless ground head), not a fact: the
	// engines read predicates with rules exclusively from the IDB.
	containsRule(t, out, `magic#path#bf(a).`)
	// Base case restricted by demand.
	containsRule(t, out, `path#bf(X, Y) :- magic#path#bf(X), edge(X, Y).`)
	// The recursive rule factors its prefix into a supplementary
	// predicate feeding both the demand rule and the continuation.
	containsRule(t, out, `sup#1#1#bf(X, Z) :- magic#path#bf(X), edge(X, Z).`)
	containsRule(t, out, `magic#path#bf(Z) :- sup#1#1#bf(X, Z).`)
	containsRule(t, out, `path#bf(X, Y) :- sup#1#1#bf(X, Z), path#bf(Z, Y).`)
	if res.MagicRules != 1 || res.SupRules != 1 {
		t.Errorf("MagicRules=%d SupRules=%d, want 1 and 1", res.MagicRules, res.SupRules)
	}
	if err := out.Validate(); err != nil {
		t.Errorf("rewritten program fails validation: %v", err)
	}
}

func TestRewriteLeftLinearTCSkipsIdentityMagic(t *testing.T) {
	p := mustParse(t, `
		path(X, Y) :- edge(X, Y).
		path(X, Y) :- path(X, Z), edge(Z, Y).
		?- path(a, Y).
	`)
	res, err := Rewrite(p)
	if err != nil {
		t.Fatalf("Rewrite: %v", err)
	}
	// The recursive call repeats the head's binding pattern on the same
	// bound variable, so its demand rule would be magic :- magic and
	// must be skipped (it would otherwise be a useless self-loop).
	if res.MagicRules != 0 {
		t.Errorf("MagicRules = %d, want 0 (identity demand rule must be skipped):\n  %s",
			res.MagicRules, strings.Join(ruleStrings(res.Program), "\n  "))
	}
	containsRule(t, res.Program, `path#bf(X, Y) :- magic#path#bf(X), path#bf(X, Z), edge(Z, Y).`)
	if err := res.Program.Validate(); err != nil {
		t.Errorf("rewritten program fails validation: %v", err)
	}
}

func TestRewriteAttachesFiltersEarly(t *testing.T) {
	// X > 0 only needs the prefix variables, so it must move onto the
	// supplementary rule and prune demand before the recursive call.
	p := mustParse(t, `
		path(X, Y) :- edge(X, Y).
		path(X, Y) :- edge(X, Z), path(Z, Y), X > 0, Y != X.
		?- path(1, Y).
	`)
	res, err := Rewrite(p)
	if err != nil {
		t.Fatalf("Rewrite: %v", err)
	}
	containsRule(t, res.Program, `sup#1#1#bf(X, Z) :- magic#path#bf(X), edge(X, Z), X > 0.`)
	containsRule(t, res.Program, `path#bf(X, Y) :- sup#1#1#bf(X, Z), path#bf(Z, Y), Y != X.`)
}

func TestRewriteCopiesFreePredicatesVerbatim(t *testing.T) {
	// The second subgoal receives no bindings (the join variable W
	// appears only later), so r is evaluated bottom-up under its
	// original name, along with its transitive dependency s.
	p := mustParse(t, `
		q(Y) :- anchor(X), r(Z, W), link(X, Y, Z, W).
		r(A, B) :- s(A, B).
		s(A, B) :- base(A, B).
		?- q(c).
	`)
	res, err := Rewrite(p)
	if err != nil {
		t.Fatalf("Rewrite: %v", err)
	}
	containsRule(t, res.Program, `r(A, B) :- s(A, B).`)
	containsRule(t, res.Program, `s(A, B) :- base(A, B).`)
	if err := res.Program.Validate(); err != nil {
		t.Errorf("rewritten program fails validation: %v", err)
	}
}

func TestRewriteNotApplicable(t *testing.T) {
	cases := []struct {
		name, src string
	}{
		{"no goal", `p(X) :- e(X). ?- p.`},
		{"all free", `p(X, Y) :- e(X, Y). ?- p(A, B).`},
		{"no rules for query", `p(X) :- e(X). ?- q(a).`},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			p := mustParse(t, tc.src)
			if tc.name == "no rules for query" {
				p.Query = "q"
				p.Goal = []ast.Term{ast.S("a")}
			}
			if _, err := Rewrite(p); !errors.Is(err, ErrNotApplicable) {
				t.Errorf("Rewrite err = %v, want ErrNotApplicable", err)
			}
		})
	}
}

func TestRewriteGoalArityMismatch(t *testing.T) {
	p := mustParse(t, `p(X, Y) :- e(X, Y). ?- p.`)
	p.Goal = []ast.Term{ast.S("a")} // p has arity 2
	if _, err := Rewrite(p); !errors.Is(err, ErrNotApplicable) {
		t.Errorf("Rewrite err = %v, want ErrNotApplicable", err)
	}
}

func TestRewriteAdornmentBlowupCapped(t *testing.T) {
	// A wide predicate demanded under many distinct patterns through a
	// chain of permuting rules. Rather than construct a genuine
	// exponential case, check the cap machinery directly with a
	// program whose rewrite exceeds maxRules via many rules.
	var b strings.Builder
	b.WriteString("q(X) :- e0(X), p0(X).\n")
	for i := 0; i < maxRules; i++ {
		b.WriteString("p0(X) :- e" + strings.Repeat("y", i%4) + "(X).\n")
	}
	b.WriteString("?- q(a).\n")
	p := mustParse(t, b.String())
	if _, err := Rewrite(p); !errors.Is(err, ErrNotApplicable) {
		t.Errorf("Rewrite err = %v, want ErrNotApplicable for oversized output", err)
	}
}

func TestRewriteMultipleBoundPositions(t *testing.T) {
	p := mustParse(t, `
		same(X, Y) :- eq(X, Y).
		same(X, Y) :- eq(X, Z), same(Z, Y).
		?- same(a, b).
	`)
	res, err := Rewrite(p)
	if err != nil {
		t.Fatalf("Rewrite: %v", err)
	}
	if res.Pattern != "bb" {
		t.Errorf("pattern = %q, want bb", res.Pattern)
	}
	containsRule(t, res.Program, `magic#same#bb(a, b).`)
	// The recursive call binds Z (from eq) and Y (from the head
	// pattern), so demand propagates as bb. The supplementary carries
	// X and Y too — the adorned head rule still needs them.
	containsRule(t, res.Program, `magic#same#bb(Z, Y) :- sup#1#1#bb(X, Y, Z).`)
}

func TestRewriteRepeatedGoalVariableTreatedFree(t *testing.T) {
	// Repeated variables carry no constant binding; the goal p(V, V)
	// adorns ff and the rewrite must refuse (QueryCtx filters the
	// diagonal after bottom-up evaluation instead).
	p := mustParse(t, `p(X, Y) :- e(X, Y). ?- p(V, V).`)
	if _, err := Rewrite(p); !errors.Is(err, ErrNotApplicable) {
		t.Errorf("Rewrite err = %v, want ErrNotApplicable", err)
	}
}

func TestUnfoldPipeline(t *testing.T) {
	p := mustParse(t, `
		mid(X, Y) :- e(X, Y).
		q(X, Y) :- mid(X, Z), f(Z, Y).
		?- q.
	`)
	out, n := Unfold(p)
	if n != 1 {
		t.Fatalf("eliminated = %d, want 1", n)
	}
	containsRule(t, out, `q(X, Y) :- e(X, Z), f(Z, Y).`)
	for _, r := range out.Rules {
		if r.Head.Pred == "mid" {
			t.Errorf("producer rule survived: %s", r)
		}
	}
	if err := out.Validate(); err != nil {
		t.Errorf("unfolded program fails validation: %v", err)
	}
}

func TestUnfoldChain(t *testing.T) {
	// A three-stage pipeline collapses entirely into the consumer.
	p := mustParse(t, `
		a(X, Y) :- e(X, Y).
		b(X, Y) :- a(X, Z), f(Z, Y).
		q(X, Y) :- b(X, Z), g(Z, Y).
		?- q.
	`)
	out, n := Unfold(p)
	if n != 2 {
		t.Fatalf("eliminated = %d, want 2", n)
	}
	if len(out.Rules) != 1 {
		t.Fatalf("rules = %d, want 1:\n  %s", len(out.Rules), strings.Join(ruleStrings(out), "\n  "))
	}
	if err := out.Validate(); err != nil {
		t.Errorf("unfolded program fails validation: %v", err)
	}
}

func TestUnfoldSkipsRecursiveAndShared(t *testing.T) {
	p := mustParse(t, `
		path(X, Y) :- edge(X, Y).
		path(X, Y) :- edge(X, Z), path(Z, Y).
		twice(X, Y) :- help(X, Y).
		thrice(X, Y) :- help(X, Y).
		help(X, Y) :- e(X, Y).
		q(X) :- path(X, X), twice(X, X), thrice(X, X).
		?- q.
	`)
	before := len(p.Rules)
	out, n := Unfold(p)
	// path is recursive, help has two consumers; only twice and thrice
	// (each consumed once by q) unfold.
	if n != 2 {
		t.Fatalf("eliminated = %d, want 2:\n  %s", n, strings.Join(ruleStrings(out), "\n  "))
	}
	if len(out.Rules) != before-2 {
		t.Errorf("rules = %d, want %d", len(out.Rules), before-2)
	}
	for _, r := range out.Rules {
		if r.Head.Pred == "twice" || r.Head.Pred == "thrice" {
			t.Errorf("producer rule survived: %s", r)
		}
	}
}

func TestUnfoldMultiRuleProducer(t *testing.T) {
	// A producer with two rules splits the consumer into two rules.
	p := mustParse(t, `
		src(X) :- red(X).
		src(X) :- blue(X).
		q(X, Y) :- src(X), pair(X, Y).
		?- q.
	`)
	out, n := Unfold(p)
	if n != 1 {
		t.Fatalf("eliminated = %d, want 1", n)
	}
	containsRule(t, out, `q(X, Y) :- red(X), pair(X, Y).`)
	containsRule(t, out, `q(X, Y) :- blue(X), pair(X, Y).`)
}

func TestUnfoldConstantHeadUnification(t *testing.T) {
	// Producer heads with constants filter the consumer at rewrite
	// time; a non-unifiable producer contributes no rule.
	p := mustParse(t, `
		tag(red, X) :- r(X).
		tag(blue, X) :- b(X).
		q(X) :- tag(red, X).
		?- q.
	`)
	out, n := Unfold(p)
	if n != 1 {
		t.Fatalf("eliminated = %d, want 1", n)
	}
	containsRule(t, out, `q(X) :- r(X).`)
	for _, s := range ruleStrings(out) {
		if strings.Contains(s, "b(") {
			t.Errorf("non-unifiable producer leaked into output: %s", s)
		}
	}
}

func TestUnfoldKeepsQueryPredicate(t *testing.T) {
	// The query predicate must never be unfolded away, even when some
	// other rule consumes it exactly once.
	p := mustParse(t, `
		q(X, Y) :- e(X, Y).
		wrap(X, Y) :- q(X, Y).
		?- q.
	`)
	out, _ := Unfold(p)
	found := false
	for _, r := range out.Rules {
		if r.Head.Pred == "q" {
			found = true
		}
	}
	if !found {
		t.Fatalf("query predicate unfolded away:\n  %s", strings.Join(ruleStrings(out), "\n  "))
	}
}

func TestUnfoldPreservesGoal(t *testing.T) {
	p := mustParse(t, `
		mid(X, Y) :- e(X, Y).
		q(X, Y) :- mid(X, Z), f(Z, Y).
		?- q(a, Y).
	`)
	out, n := Unfold(p)
	if n != 1 {
		t.Fatalf("eliminated = %d, want 1", n)
	}
	if out.Query != "q" || len(out.Goal) != 2 || !out.Goal[0].Equal(ast.S("a")) {
		t.Errorf("query/goal not preserved: query=%q goal=%v", out.Query, out.Goal)
	}
}
