package lint

import (
	"context"
	"reflect"
	"strings"
	"testing"

	"repro/internal/parser"
)

func runOn(t *testing.T, progSrc, icsSrc, factsSrc string) *Report {
	t.Helper()
	p, err := parser.ParseProgram(progSrc)
	if err != nil {
		t.Fatal(err)
	}
	ics, err := parser.ParseICs(icsSrc)
	if err != nil {
		t.Fatal(err)
	}
	facts, err := parser.ParseFacts(factsSrc)
	if err != nil {
		t.Fatal(err)
	}
	return Run(context.Background(), p, ics, facts, Options{})
}

func findingIDs(rep *Report) map[string]int {
	out := map[string]int{}
	for _, f := range rep.Findings {
		out[f.ID]++
	}
	return out
}

func TestUnsatBody(t *testing.T) {
	rep := runOn(t, `
q(X) :- a(X, Y), b(Y, X).
q(X) :- a(X, Y), a(Y, X).
?- q.
`, `:- a(X, Y), b(Y, Z).`, ``)
	ids := findingIDs(rep)
	if ids["unsat-body"] != 1 {
		t.Fatalf("want exactly one unsat-body finding, got %v", rep.Findings)
	}
	if rep.Errors != 1 {
		t.Errorf("want 1 error, got %d", rep.Errors)
	}
	// The finding must point at the offending rule (line 2).
	for _, f := range rep.Findings {
		if f.ID == "unsat-body" && f.Line != 2 {
			t.Errorf("unsat-body at line %d, want 2", f.Line)
		}
	}
}

func TestEmptyPredicateAndDeadRule(t *testing.T) {
	rep := runOn(t, `
p(X) :- a(X, Y), b(Y, Z).
q(X) :- p(X).
r(X) :- c(X, X).
?- r.
`, `:- a(X, Y), b(Y, Z).`, ``)
	ids := findingIDs(rep)
	if ids["unsat-body"] != 1 {
		t.Errorf("want unsat-body for p's rule, got %v", rep.Findings)
	}
	if ids["empty-predicate"] != 2 {
		t.Errorf("want empty-predicate for p and q, got %v", rep.Findings)
	}
	if ids["dead-rule"] != 1 {
		t.Errorf("want dead-rule for q's rule, got %v", rep.Findings)
	}
	if ids["query-empty"] != 0 {
		t.Errorf("query r is satisfiable, got %v", rep.Findings)
	}
}

func TestQueryEmpty(t *testing.T) {
	rep := runOn(t, `
p(X) :- a(X, Y), b(Y, Z).
?- p.
`, `:- a(X, Y), b(Y, Z).`, ``)
	ids := findingIDs(rep)
	if ids["query-empty"] != 1 {
		t.Fatalf("want query-empty, got %v", rep.Findings)
	}
}

func TestUnreachableRule(t *testing.T) {
	rep := runOn(t, `
p(X) :- a(X, X).
q(X) :- b(X, X).
?- p.
`, ``, ``)
	ids := findingIDs(rep)
	if ids["unreachable-rule"] != 1 {
		t.Fatalf("want unreachable-rule for q, got %v", rep.Findings)
	}
}

func TestSubsumedRule(t *testing.T) {
	rep := runOn(t, `
s(X) :- e(X, Y).
s(X) :- e(X, Y), f(Y, Y).
?- s.
`, ``, ``)
	var lines []int
	for _, f := range rep.Findings {
		if f.ID == "subsumed-rule" {
			lines = append(lines, f.Line)
		}
	}
	// The more specific rule (line 3) is subsumed by the general one;
	// the general one must not be flagged.
	if !reflect.DeepEqual(lines, []int{3}) {
		t.Fatalf("subsumed-rule lines %v, want [3]; findings: %v", lines, rep.Findings)
	}
}

func TestEquivalentRulesFlagOnlyOne(t *testing.T) {
	rep := runOn(t, `
s(X) :- e(X, Y), e(X, Z).
s(A) :- e(A, B).
?- s.
`, ``, ``)
	n := findingIDs(rep)["subsumed-rule"]
	if n != 1 {
		t.Fatalf("equivalent rules: want exactly one subsumed-rule finding, got %d: %v", n, rep.Findings)
	}
}

func TestGuardrails(t *testing.T) {
	rep := runOn(t, `
p(X) :- a(X, Y).
?- p.
`, `
:- a(X, Y), X < Z, c(Z, Z).
:- a(X, Y), !b(Y, X).
:- a(X, Y), !b(Y, Z), c(Z, Z).
`, ``)
	ids := findingIDs(rep)
	if ids["nonlocal-order"] != 1 {
		t.Errorf("want nonlocal-order for ic 1, got %v", rep.Findings)
	}
	if ids["nonlocal-negation"] != 1 {
		t.Errorf("want nonlocal-negation for ic 3, got %v", rep.Findings)
	}
	if ids["neg-edb-ic"] != 1 {
		t.Errorf("want neg-edb-ic for ic 2, got %v", rep.Findings)
	}
}

func TestHygiene(t *testing.T) {
	rep := runOn(t, `
p(X) :- a(X, Y), b(Y).
w(X) :- e(X, Y).
?- p.
`, ``, `c(1, 2). c(3, 4).`)
	ids := findingIDs(rep)
	if ids["singleton-var"] == 0 {
		t.Errorf("want singleton-var for w's rule, got %v", rep.Findings)
	}
	if ids["unused-edb"] != 1 {
		t.Errorf("want unused-edb for c, got %v", rep.Findings)
	}
}

func TestArityMismatchGatesSemantics(t *testing.T) {
	rep := runOn(t, `
p(X) :- a(X, Y).
q(X) :- a(X).
?- p.
`, ``, ``)
	ids := findingIDs(rep)
	if ids["arity-mismatch"] != 1 {
		t.Fatalf("want arity-mismatch, got %v", rep.Findings)
	}
	for _, id := range []string{"unsat-body", "empty-predicate", "subsumed-rule", "unreachable-rule"} {
		if ids[id] != 0 {
			t.Errorf("semantic check %s ran despite structural error: %v", id, rep.Findings)
		}
	}
}

func TestUnsafeRule(t *testing.T) {
	rep := runOn(t, `
p(X) :- a(Y, Y).
?- p.
`, ``, ``)
	if findingIDs(rep)["unsafe-rule"] != 1 {
		t.Fatalf("want unsafe-rule, got %v", rep.Findings)
	}
	if !rep.HasErrors() {
		t.Error("unsafe rule must be an error")
	}
}

func TestCleanProgramNoFindings(t *testing.T) {
	rep := runOn(t, `
p(X, Y) :- a(X, Y), b(Y).
?- p.
`, `:- a(X, Y), Y <= X.`, `a(1, 2). b(2).`)
	if len(rep.Findings) != 0 {
		t.Fatalf("clean program: want no findings, got %v", rep.Findings)
	}
}

// A self-recursive program that is not provably bounded gets exactly
// one advisory: the honest L7 budget note, at Info severity — never a
// Warning or Error, so recursion is not misreported as a defect.
func TestRecursiveProgramOnlyBoundednessInfo(t *testing.T) {
	rep := runOn(t, `
p(X, Y) :- a(X, Y).
p(X, Y) :- a(X, Z), p(Z, Y).
?- p.
`, `:- a(X, Y), Y <= X.`, `a(1, 2).`)
	if len(rep.Findings) != 1 || rep.Findings[0].ID != "boundedness-budget" || rep.Findings[0].Severity != Info {
		t.Fatalf("want exactly the L7 boundedness-budget info, got %v", rep.Findings)
	}
	if rep.HasErrors() {
		t.Error("boundedness advisory must not be an error")
	}
}

// TestBoundedRecursionFindings drives L7's three verdicts and the
// ElimEnabled suppression.
func TestBoundedRecursionFindings(t *testing.T) {
	boundedSrc := `
buys(X, Y) :- likes(X, Y).
buys(X, Y) :- trendy(X), buys(Z, Y).
?- buys.
`
	rep := runOn(t, boundedSrc, ``, ``)
	ids := findingIDs(rep)
	if ids["bounded-recursion"] != 1 {
		t.Fatalf("want bounded-recursion warning, got %v", rep.Findings)
	}
	for _, f := range rep.Findings {
		if f.ID == "bounded-recursion" {
			if f.Severity != Warning {
				t.Errorf("bounded-recursion severity = %v, want warning", f.Severity)
			}
			if !strings.Contains(f.Message, "2-fold unfolding") {
				t.Errorf("message should cite the witness depth: %q", f.Message)
			}
		}
	}

	// Declaring elimination enabled suppresses the advisory.
	unit, err := parser.Parse(boundedSrc)
	if err != nil {
		t.Fatal(err)
	}
	rep = Run(context.Background(), unit.Program, nil, nil, Options{ElimEnabled: true})
	if n := findingIDs(rep)["bounded-recursion"]; n != 0 {
		t.Fatalf("ElimEnabled should suppress bounded-recursion, got %v", rep.Findings)
	}

	// Out-of-scope recursion (a self-recursive predicate entangled in
	// mutual recursion) is Unknown.
	rep = runOn(t, `
p(X) :- base(X).
p(X) :- link(X, Y), p(Y).
p(X) :- q(X).
q(X) :- hop(X, Y), p(Y).
?- p.
`, ``, ``)
	if findingIDs(rep)["boundedness-unknown"] != 1 {
		t.Fatalf("want boundedness-unknown info, got %v", rep.Findings)
	}
}

func TestDeterministic(t *testing.T) {
	run := func() *Report {
		return runOn(t, `
p(X) :- a(X, Y), b(Y, X).
q(X) :- p(X).
s(X) :- e(X, Y).
s(X) :- e(X, Y), f(Y, Y).
?- q.
`, `:- a(X, Y), b(Y, Z). :- e(X, Y), !f(X, Y).`, ``)
	}
	a, b := run(), run()
	if !reflect.DeepEqual(a.Findings, b.Findings) {
		t.Fatalf("nondeterministic findings:\n%v\nvs\n%v", a.Findings, b.Findings)
	}
}

func TestCancelledContextDegradesToUnknown(t *testing.T) {
	p, err := parser.ParseProgram(`
p(X) :- a(X, Y), b(Y, X).
?- p.
`)
	if err != nil {
		t.Fatal(err)
	}
	ics, err := parser.ParseICs(`:- a(X, Y), b(Y, Z).`)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	rep := Run(ctx, p, ics, nil, Options{})
	for _, f := range rep.Findings {
		if f.Severity == Error {
			t.Errorf("cancelled run must not claim errors, got %v", f)
		}
	}
	if findingIDs(rep)["aborted"] != 1 {
		t.Errorf("want aborted note, got %v", rep.Findings)
	}
}

func TestGoalDirectedAdvisory(t *testing.T) {
	const tc = `
path(X, Y) :- edge(X, Y).
path(X, Y) :- edge(X, Z), path(Z, Y).
?- path(1, Y).
`
	p, err := parser.ParseProgram(tc)
	if err != nil {
		t.Fatal(err)
	}

	rep := Run(context.Background(), p, nil, nil, Options{})
	ids := findingIDs(rep)
	if ids["bound-query-no-magic"] != 1 {
		t.Fatalf("want one bound-query-no-magic finding, got %v", rep.Findings)
	}
	for _, f := range rep.Findings {
		if f.ID != "bound-query-no-magic" {
			continue
		}
		if f.Severity != Warning {
			t.Errorf("severity = %v, want warning", f.Severity)
		}
		for _, want := range []string{"path#bf", "binds 1 of 2"} {
			if !strings.Contains(f.Message, want) {
				t.Errorf("message %q missing %q", f.Message, want)
			}
		}
	}

	// A caller that evaluates with magic enabled suppresses the advisory.
	rep = Run(context.Background(), p, nil, nil, Options{MagicEnabled: true})
	if ids := findingIDs(rep); ids["bound-query-no-magic"] != 0 {
		t.Fatalf("MagicEnabled did not suppress the advisory: %v", rep.Findings)
	}

	// Unbound goals and goal-less queries are not point queries.
	for _, goal := range []string{"?- path(X, Y).", "?- path."} {
		p, err := parser.ParseProgram(`
path(X, Y) :- edge(X, Y).
` + goal + `
`)
		if err != nil {
			t.Fatal(err)
		}
		rep := Run(context.Background(), p, nil, nil, Options{})
		if ids := findingIDs(rep); ids["bound-query-no-magic"] != 0 {
			t.Fatalf("goal %q should not warn: %v", goal, rep.Findings)
		}
	}

	// Bound goal where the rewrite is structurally inapplicable (the
	// query predicate has no rules): the warning fires even with magic
	// enabled, since the engine falls back to bottom-up evaluation.
	p, err = parser.ParseProgram(`
p(X, Y) :- e(X, Y).
?- q(1).
`)
	if err != nil {
		t.Fatal(err)
	}
	rep = Run(context.Background(), p, nil, nil, Options{MagicEnabled: true})
	found := false
	for _, f := range rep.Findings {
		if f.ID == "bound-query-no-magic" {
			found = true
			if !strings.Contains(f.Message, "does not apply") {
				t.Errorf("inapplicable-rewrite message %q should say why", f.Message)
			}
		}
	}
	if !found {
		t.Fatalf("inapplicable rewrite on a bound goal should warn: %v", rep.Findings)
	}
}
