// Package order decides satisfiability and implication for
// conjunctions of order atoms (γ θ δ with θ ∈ {<, <=, >, >=, =, !=})
// interpreted over a dense total order containing all constants.
//
// The solver builds a constraint graph whose nodes are variables and
// constants, condenses its ≤-cycles into equivalence classes, and then
// checks for contradictions: a strict edge inside a class, two
// distinct constants in one class, a ≠ pair forced equal, or a class
// squeezed between constant bounds that leave it empty. Density of the
// order guarantees everything else is realizable.
//
// Implication is decided by refutation: C ⊨ a iff C ∧ ¬a is
// unsatisfiable, which is sound and complete over a dense order
// because the negation of each comparison operator is again a single
// comparison.
package order

import (
	"sort"
	"strings"

	"repro/internal/ast"
)

// Set is a conjunction of order atoms. The zero value is the empty
// (trivially satisfiable) conjunction.
type Set struct {
	atoms []ast.Cmp
}

// NewSet returns a Set holding the given atoms.
func NewSet(atoms ...ast.Cmp) *Set {
	s := &Set{}
	for _, a := range atoms {
		s.Add(a)
	}
	return s
}

// Add appends an atom to the conjunction (duplicates are ignored).
func (s *Set) Add(c ast.Cmp) {
	for _, e := range s.atoms {
		if e.Key() == c.Key() {
			return
		}
	}
	s.atoms = append(s.atoms, c)
}

// AddAll appends all atoms of the slice.
func (s *Set) AddAll(cs []ast.Cmp) {
	for _, c := range cs {
		s.Add(c)
	}
}

// Atoms returns the atoms of the conjunction (shared slice; callers
// must not modify it).
func (s *Set) Atoms() []ast.Cmp { return s.atoms }

// Clone returns a copy of the set.
func (s *Set) Clone() *Set {
	return &Set{atoms: append([]ast.Cmp(nil), s.atoms...)}
}

// Len returns the number of distinct atoms.
func (s *Set) Len() int { return len(s.atoms) }

// String renders the conjunction deterministically.
func (s *Set) String() string {
	parts := make([]string, len(s.atoms))
	for i, a := range s.atoms {
		parts[i] = a.String()
	}
	sort.Strings(parts)
	return strings.Join(parts, ", ")
}

// graph is the internal constraint-graph representation.
type graph struct {
	ids   map[string]int // term key -> node id
	terms []ast.Term     // node id -> representative term
	// adj[u][v] holds the strongest edge strength u → v:
	// 0 = none, 1 = u <= v, 2 = u < v.
	adj [][]uint8
	neq [][2]int // pairs constrained to be different
	bad bool     // immediate contradiction (e.g. 2 < 1 on constants)
}

func (g *graph) node(t ast.Term) int {
	k := t.Key()
	if id, ok := g.ids[k]; ok {
		return id
	}
	id := len(g.terms)
	g.ids[k] = id
	g.terms = append(g.terms, t)
	for i := range g.adj {
		g.adj[i] = append(g.adj[i], 0)
	}
	g.adj = append(g.adj, make([]uint8, id+1))
	return id
}

func (g *graph) edge(u, v int, strength uint8) {
	if g.adj[u][v] < strength {
		g.adj[u][v] = strength
	}
}

// build constructs the constraint graph for the conjunction, adding
// the implicit total order among the constants that appear.
func (s *Set) build() *graph {
	g := &graph{ids: map[string]int{}}
	for _, a := range s.atoms {
		u, v := g.node(a.Left), g.node(a.Right)
		switch a.Op {
		case ast.LT:
			g.edge(u, v, 2)
		case ast.LE:
			g.edge(u, v, 1)
		case ast.GT:
			g.edge(v, u, 2)
		case ast.GE:
			g.edge(v, u, 1)
		case ast.EQ:
			g.edge(u, v, 1)
			g.edge(v, u, 1)
		case ast.NE:
			g.neq = append(g.neq, [2]int{u, v})
		}
	}
	// Implicit order among constants.
	var consts []int
	for id, t := range g.terms {
		if t.IsConst() {
			consts = append(consts, id)
		}
	}
	for i := 0; i < len(consts); i++ {
		for j := i + 1; j < len(consts); j++ {
			a, b := consts[i], consts[j]
			switch g.terms[a].Compare(g.terms[b]) {
			case -1:
				g.edge(a, b, 2)
			case 1:
				g.edge(b, a, 2)
			}
		}
	}
	return g
}

// closure runs Floyd–Warshall over edge strengths: combining a path
// through k, the strength of u→v is max over min-combinations; a path
// is strict if any hop is strict.
func (g *graph) closure() {
	n := len(g.terms)
	for k := 0; k < n; k++ {
		for u := 0; u < n; u++ {
			if g.adj[u][k] == 0 {
				continue
			}
			for v := 0; v < n; v++ {
				if g.adj[k][v] == 0 {
					continue
				}
				st := g.adj[u][k]
				if g.adj[k][v] > st {
					st = g.adj[k][v]
				}
				if g.adj[u][v] < st {
					g.adj[u][v] = st
				}
			}
		}
	}
}

// Satisfiable reports whether some assignment of the variables into
// the dense order satisfies every atom of the conjunction.
func (s *Set) Satisfiable() bool {
	g := s.build()
	if g.bad {
		return false
	}
	g.closure()
	n := len(g.terms)
	for u := 0; u < n; u++ {
		if g.adj[u][u] == 2 {
			return false // strict cycle: u < u
		}
	}
	// u ≤ v ≤ u with any strict hop was caught above (strength max).
	// Forced equalities: u ~ v iff adj[u][v] ≥ 1 and adj[v][u] ≥ 1.
	eq := func(u, v int) bool { return u == v || (g.adj[u][v] >= 1 && g.adj[v][u] >= 1) }
	// Two distinct constants forced equal is impossible (implicit strict
	// edges make that a strict cycle, already caught). A ≠ pair forced
	// equal is a contradiction:
	for _, p := range g.neq {
		if eq(p[0], p[1]) {
			return false
		}
	}
	// A ≠ pair pinned to the same constant: u = c and v = c.
	pin := make([]int, n) // pinned constant node, or -1
	for u := 0; u < n; u++ {
		pin[u] = -1
		for v := 0; v < n; v++ {
			if g.terms[v].IsConst() && eq(u, v) {
				pin[u] = v
				break
			}
		}
	}
	for _, p := range g.neq {
		if pin[p[0]] >= 0 && pin[p[1]] >= 0 &&
			g.terms[pin[p[0]]].Compare(g.terms[pin[p[1]]]) == 0 {
			return false
		}
	}
	// Everything else is realizable over a dense order: take the strict
	// partial order on equivalence classes (antisymmetric and acyclic
	// by the checks above), extend it to a linear order, and embed the
	// classes into the rationals respecting the constants' positions;
	// density provides room between and beyond all constants.
	return true
}

// Implies reports whether the conjunction logically entails the given
// atom over dense orders: s ⊨ c iff s ∧ ¬c is unsatisfiable.
// The empty conjunction implies only tautologies (e.g. X <= X, 1 < 2).
func (s *Set) Implies(c ast.Cmp) bool {
	if !s.Satisfiable() {
		return true // ex falso
	}
	t := s.Clone()
	t.Add(c.Negate())
	return !t.Satisfiable()
}

// ImpliesAll reports whether every atom of cs is implied.
func (s *Set) ImpliesAll(cs []ast.Cmp) bool {
	for _, c := range cs {
		if !s.Implies(c) {
			return false
		}
	}
	return true
}

// Contradicts reports whether adding c makes the conjunction
// unsatisfiable.
func (s *Set) Contradicts(c ast.Cmp) bool {
	t := s.Clone()
	t.Add(c)
	return !t.Satisfiable()
}

// ForcedEqualities returns the pairs of distinct terms the conjunction
// forces to be equal, as a list of (representative, term) pairs: each
// term is paired with the canonical representative of its equivalence
// class. Variables map to either a constant in their class (preferred)
// or the lexicographically least variable. The result is deterministic.
func (s *Set) ForcedEqualities() map[string]ast.Term {
	out := map[string]ast.Term{}
	if !s.Satisfiable() {
		return out
	}
	g := s.build()
	g.closure()
	n := len(g.terms)
	eq := func(u, v int) bool { return u == v || (g.adj[u][v] >= 1 && g.adj[v][u] >= 1) }
	// Pinning to constants counts as equality too: u between c and c.
	class := make([]int, n)
	for i := range class {
		class[i] = -1
	}
	next := 0
	for u := 0; u < n; u++ {
		if class[u] >= 0 {
			continue
		}
		class[u] = next
		for v := u + 1; v < n; v++ {
			if class[v] < 0 && eq(u, v) {
				class[v] = next
			}
		}
		next++
	}
	// Attach classes pinned to a constant to that constant's class.
	for u := 0; u < n; u++ {
		if g.terms[u].IsConst() {
			continue
		}
		for v := 0; v < n; v++ {
			if g.terms[v].IsConst() && g.adj[u][v] >= 1 && g.adj[v][u] >= 1 {
				class[u] = class[v]
			}
		}
	}
	// Representative per class: a constant if present, else least var.
	rep := map[int]ast.Term{}
	for u := 0; u < n; u++ {
		c := class[u]
		t := g.terms[u]
		cur, ok := rep[c]
		switch {
		case !ok:
			rep[c] = t
		case cur.IsVar() && t.IsConst():
			rep[c] = t
		case cur.IsVar() && t.IsVar() && t.Name < cur.Name:
			rep[c] = t
		}
	}
	for u := 0; u < n; u++ {
		t := g.terms[u]
		r := rep[class[u]]
		if t.IsVar() && !t.Equal(r) {
			out[t.Name] = r
		}
	}
	return out
}

// EvalGround evaluates a conjunction whose atoms are all ground,
// reporting whether every atom holds.
func EvalGround(cs []ast.Cmp) bool {
	for _, c := range cs {
		if c.Left.IsVar() || c.Right.IsVar() {
			panic("order: EvalGround on non-ground atom " + c.String())
		}
		if !c.Eval() {
			return false
		}
	}
	return true
}
