package qtree

import (
	"strings"
	"testing"

	"repro/internal/eval"
	"repro/internal/parser"
)

// TestOptimizeDeterministic: repeated runs must produce byte-identical
// rewritten programs and forests — downstream users diff and cache
// optimizer output.
func TestOptimizeDeterministic(t *testing.T) {
	srcs := []struct{ prog, ics string }{
		{figure1Program, figure1IC},
		{`
			path(X, Y) :- step(X, Y).
			path(X, Y) :- step(X, Z), path(Z, Y).
			goodPath(X, Y) :- startPoint(X), path(X, Y), endPoint(Y).
			?- goodPath.
		`, `
			:- startPoint(X), step(X, Y), X < 100.
			:- step(X, Y), X >= Y.
		`},
		{`
			boss(E, M) :- manages(E, M).
			boss(E, M) :- manages(E, X), boss(X, M).
			?- boss.
		`, `:- manages(E, M1), manages(E, M2), M1 != M2.`},
	}
	for i, s := range srcs {
		var progs, forests []string
		for run := 0; run < 4; run++ {
			out, err := Optimize(parser.MustParseProgram(s.prog), parser.MustParseICs(s.ics))
			if err != nil {
				t.Fatal(err)
			}
			progs = append(progs, out.Program.String())
			forests = append(forests, out.Tree.Print())
		}
		for run := 1; run < 4; run++ {
			if progs[run] != progs[0] {
				t.Fatalf("case %d: program differs between runs:\n%s\nvs\n%s", i, progs[0], progs[run])
			}
			if forests[run] != forests[0] {
				t.Fatalf("case %d: forest differs between runs", i)
			}
		}
	}
}

// TestMixedConstraintClasses exercises all three constraint-handling
// modes at once: a pure ic (prune), a local order ic (case split +
// mapping condition), and a non-local order ic (quasi-local residue) —
// and checks equivalence on consistent databases.
func TestMixedConstraintClasses(t *testing.T) {
	prog := parser.MustParseProgram(`
		route(X, Y) :- hop(X, Y).
		route(X, Y) :- hop(X, Z), route(Z, Y).
		trip(X, Y) :- origin(X), route(X, Y), dest(Y).
		?- trip.
	`)
	ics := parser.MustParseICs(`
		:- hop(X, Y), closed(Y).
		:- hop(X, Y), X >= Y.
		:- origin(X), dest(Y), Y <= X.
	`)
	out, err := Optimize(prog, ics)
	if err != nil {
		t.Fatal(err)
	}
	if len(out.Warnings) != 0 {
		t.Fatalf("all three constraints are supported; warnings: %v", out.Warnings)
	}
	db := eval.NewDB()
	db.AddFacts(parser.MustParseFacts(`
		hop(1, 2). hop(2, 5). hop(5, 9). hop(2, 7).
		origin(1). origin(2).
		dest(9). dest(7).
		closed(11).
	`))
	want, _, err := eval.Eval(prog, db)
	if err != nil {
		t.Fatal(err)
	}
	got, _, err := eval.Eval(out.Program, db)
	if err != nil {
		t.Fatalf("%v\n%s", err, out.Program)
	}
	w := want.SortedFacts("trip")
	g := got.SortedFacts("trip")
	if strings.Join(w, ";") != strings.Join(g, ";") {
		t.Fatalf("answers differ:\n%v\nvs\n%v", w, g)
	}
	if len(w) == 0 {
		t.Fatal("sanity: expected trips")
	}
}

// TestMixedNegationAndOrder combines a local negated-atom constraint
// with order constraints.
func TestMixedNegationAndOrder(t *testing.T) {
	prog := parser.MustParseProgram(`
		conn(X, Y) :- link(X, Y), !down(X).
		conn(X, Y) :- link(X, Z), !down(X), conn(Z, Y).
		?- conn.
	`)
	ics := parser.MustParseICs(`
		:- link(X, Y), !registered(X).
		:- link(X, Y), X = Y.
	`)
	out, err := Optimize(prog, ics)
	if err != nil {
		t.Fatal(err)
	}
	if len(out.Warnings) != 0 {
		t.Fatalf("warnings: %v", out.Warnings)
	}
	db := eval.NewDB()
	db.AddFacts(parser.MustParseFacts(`
		link(1, 2). link(2, 3).
		registered(1). registered(2).
		down(9).
	`))
	db.Rel("down", 1)
	want, _, err := eval.Eval(prog, db)
	if err != nil {
		t.Fatal(err)
	}
	got, _, err := eval.Eval(out.Program, db)
	if err != nil {
		t.Fatalf("%v\n%s", err, out.Program)
	}
	w := want.SortedFacts("conn")
	g := got.SortedFacts("conn")
	if strings.Join(w, ";") != strings.Join(g, ";") {
		t.Fatalf("answers differ:\n%v\nvs\n%v", w, g)
	}
	if len(w) != 3 {
		t.Fatalf("sanity: want 3 conn tuples, got %v", w)
	}
}

// TestFigure1ForestGolden pins the forest's high-level shape: three
// trees, each mentioning the expected non-trivial residue sets.
func TestFigure1ForestGolden(t *testing.T) {
	out, err := Optimize(parser.MustParseProgram(figure1Program), parser.MustParseICs(figure1IC))
	if err != nil {
		t.Fatal(err)
	}
	s := out.Tree.Print()
	for _, frag := range []string{
		"=== tree 1", "=== tree 2", "=== tree 3",
		"rule: p_s0(V0, V1) :- a(V0, V1).",
		"rule: p_s0(V0, V1) :- b(V0, V1).",
	} {
		if !strings.Contains(s, frag) {
			t.Fatalf("forest misses %q:\n%s", frag, s)
		}
	}
	// Exactly one adornment shows BOTH constraints' unmapped atoms (p3).
	both := strings.Count(s, "ic0:{a(") // appears on p2- and p3-style nodes
	if both == 0 {
		t.Fatalf("adornment annotations missing:\n%s", s)
	}
}

// TestZeroAryQueryOptimizes covers 0-ary query predicates (like the
// halt predicate of the Theorem 5.4 encoding) through the whole
// pipeline, including constraints that are skipped as unsupported.
func TestZeroAryQueryOptimizes(t *testing.T) {
	prog := parser.MustParseProgram(`
		reach(X) :- start(X).
		reach(Y) :- reach(X), succ(X, Y).
		halt :- reach(X), final(X).
		?- halt.
	`)
	ics := parser.MustParseICs(`
		:- succ(X, Y), !dom(X).
		:- start(X), final(X).
	`)
	out, err := Optimize(prog, ics)
	if err != nil {
		t.Fatal(err)
	}
	if !out.Satisfiable {
		t.Fatal("halt is satisfiable")
	}
	db := eval.NewDB()
	db.AddFacts(parser.MustParseFacts(`
		start(1). succ(1, 2). succ(2, 3). final(3).
		dom(1). dom(2).
	`))
	want, _, err := eval.Eval(prog, db)
	if err != nil {
		t.Fatal(err)
	}
	got, _, err := eval.Eval(out.Program, db)
	if err != nil {
		t.Fatalf("%v\n%s", err, out.Program)
	}
	if want.Count("halt") != 1 || got.Count("halt") != 1 {
		t.Fatalf("halt counts: want-prog %d, opt-prog %d", want.Count("halt"), got.Count("halt"))
	}
}

// TestTwoCounterEncodingOptimizes runs the full optimizer over the
// Theorem 5.4 encoding itself — a stress test with 30+ constraints,
// most of them unsupported (non-local negation) and correctly skipped.
func TestTwoCounterEncodingOptimizes(t *testing.T) {
	m := tcmHalting()
	out, err := Optimize(m.prog, m.ics)
	if err != nil {
		t.Fatal(err)
	}
	if len(out.Warnings) == 0 {
		t.Fatal("the encoding's non-local negations should produce warnings")
	}
	got, _, err := eval.Eval(out.Program, m.db)
	if err != nil {
		t.Fatalf("%v\n%s", err, out.Program)
	}
	if got.Count("halt") != 1 {
		t.Fatalf("halt not derived by the optimized encoding: %d", got.Count("halt"))
	}
}
