// Package unify provides substitutions, most-general unifiers, and
// homomorphism enumeration over the function-free atoms of package
// ast. Homomorphisms (containment mappings) are the engine underneath
// residue computation, adornment construction, and query containment.
package unify

import (
	"sort"
	"strings"

	"repro/internal/ast"
)

// Subst is a substitution: a finite map from variable names to terms.
// Bindings may chain through variables; Walk resolves a term to its
// final binding.
type Subst map[string]ast.Term

// Clone returns a copy of the substitution.
func (s Subst) Clone() Subst {
	out := make(Subst, len(s))
	for k, v := range s {
		out[k] = v
	}
	return out
}

// Walk resolves t through the substitution until it reaches a constant
// or an unbound variable.
func (s Subst) Walk(t ast.Term) ast.Term {
	for t.IsVar() {
		b, ok := s[t.Name]
		if !ok {
			return t
		}
		t = b
	}
	return t
}

// Bind adds the binding v -> t, where v must be an unbound variable
// name under s.
func (s Subst) Bind(v string, t ast.Term) { s[v] = t }

// Apply returns t with the substitution applied (fully resolved).
func (s Subst) Apply(t ast.Term) ast.Term { return s.Walk(t) }

// ApplyAtom returns a with the substitution applied to every argument.
func (s Subst) ApplyAtom(a ast.Atom) ast.Atom {
	out := a.Clone()
	for i, t := range out.Args {
		out.Args[i] = s.Walk(t)
	}
	return out
}

// ApplyCmp returns c with the substitution applied to both sides.
func (s Subst) ApplyCmp(c ast.Cmp) ast.Cmp {
	c.Left = s.Walk(c.Left)
	c.Right = s.Walk(c.Right)
	return c
}

// ApplyRule returns r with the substitution applied throughout.
func (s Subst) ApplyRule(r ast.Rule) ast.Rule {
	out := ast.Rule{Head: s.ApplyAtom(r.Head), At: r.At}
	for _, a := range r.Pos {
		out.Pos = append(out.Pos, s.ApplyAtom(a))
	}
	for _, a := range r.Neg {
		out.Neg = append(out.Neg, s.ApplyAtom(a))
	}
	for _, c := range r.Cmp {
		out.Cmp = append(out.Cmp, s.ApplyCmp(c))
	}
	return out
}

// ApplyIC returns ic with the substitution applied throughout.
func (s Subst) ApplyIC(ic ast.IC) ast.IC {
	out := ast.IC{At: ic.At}
	for _, a := range ic.Pos {
		out.Pos = append(out.Pos, s.ApplyAtom(a))
	}
	for _, a := range ic.Neg {
		out.Neg = append(out.Neg, s.ApplyAtom(a))
	}
	for _, c := range ic.Cmp {
		out.Cmp = append(out.Cmp, s.ApplyCmp(c))
	}
	return out
}

// String renders the substitution deterministically, e.g. {X->1, Y->Z}.
func (s Subst) String() string {
	keys := make([]string, 0, len(s))
	for k := range s {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var b strings.Builder
	b.WriteByte('{')
	for i, k := range keys {
		if i > 0 {
			b.WriteString(", ")
		}
		b.WriteString(k)
		b.WriteString("->")
		b.WriteString(s.Walk(ast.V(k)).String())
	}
	b.WriteByte('}')
	return b.String()
}

// unifyTerm extends s so that a and b become equal, or reports failure.
func unifyTerm(a, b ast.Term, s Subst) bool {
	a, b = s.Walk(a), s.Walk(b)
	switch {
	case a.IsVar() && b.IsVar():
		if a.Name != b.Name {
			s.Bind(a.Name, b)
		}
		return true
	case a.IsVar():
		s.Bind(a.Name, b)
		return true
	case b.IsVar():
		s.Bind(b.Name, a)
		return true
	default:
		return a.Equal(b)
	}
}

// Unify computes a most-general unifier of two atoms, extending the
// given substitution (which may be nil). It returns the extended
// substitution and whether unification succeeded. The input
// substitution is not modified.
func Unify(a, b ast.Atom, s Subst) (Subst, bool) {
	if a.Pred != b.Pred || len(a.Args) != len(b.Args) {
		return nil, false
	}
	out := Subst{}
	if s != nil {
		out = s.Clone()
	}
	for i := range a.Args {
		if !unifyTerm(a.Args[i], b.Args[i], out) {
			return nil, false
		}
	}
	return out, true
}

// matchTerm extends s so that pattern term p maps to target term t,
// binding only variables in the pattern-variable set pv. A walked-to
// term outside pv (a target variable already chosen as some pattern
// variable's image, or a constant) must equal t exactly.
func matchTerm(p, t ast.Term, s Subst, pv map[string]bool) bool {
	p = s.Walk(p)
	if p.IsVar() && pv[p.Name] {
		s.Bind(p.Name, t)
		return true
	}
	return p.Equal(t)
}

// Match computes a one-way matcher from pattern to target: a
// substitution σ over the pattern's variables with σ(pattern) ==
// target. Variables of the target are treated as constants, so
// distinct target variables stay distinct. The pattern's and target's
// variable sets must be disjoint (rename apart first; see
// ast.Freshener) — otherwise a shared name is treated as a pattern
// variable. The input substitution is not modified; Match returns the
// extended substitution on success.
func Match(pattern, target ast.Atom, s Subst) (Subst, bool) {
	pv := map[string]bool{}
	for _, v := range pattern.Vars(nil) {
		pv[v] = true
	}
	return matchWithVars(pattern, target, s, pv)
}

// matchWithVars is Match with an explicit pattern-variable set, shared
// across the atoms of a conjunction during homomorphism search.
func matchWithVars(pattern, target ast.Atom, s Subst, pv map[string]bool) (Subst, bool) {
	if pattern.Pred != target.Pred || len(pattern.Args) != len(target.Args) {
		return nil, false
	}
	out := Subst{}
	if s != nil {
		out = s.Clone()
	}
	for i := range pattern.Args {
		if !matchTerm(pattern.Args[i], target.Args[i], out, pv) {
			return nil, false
		}
	}
	return out, true
}

// Homomorphisms enumerates every homomorphism from the conjunction src
// into the conjunction dst: substitutions σ over the variables of src
// such that for every atom a ∈ src, σ(a) is (structurally equal to) an
// atom of dst. The variable sets of src and dst must be disjoint
// (rename apart first). fn is called once per homomorphism; returning
// false stops the enumeration early. Homomorphisms reports whether at
// least one homomorphism was found.
func Homomorphisms(src, dst []ast.Atom, fn func(Subst) bool) bool {
	pv := map[string]bool{}
	for _, a := range src {
		for _, v := range a.Vars(nil) {
			pv[v] = true
		}
	}
	found := false
	var rec func(i int, s Subst) bool // returns false to abort everything
	rec = func(i int, s Subst) bool {
		if i == len(src) {
			found = true
			return fn(s.Clone())
		}
		for _, d := range dst {
			if next, ok := matchWithVars(src[i], d, s, pv); ok {
				if !rec(i+1, next) {
					return false
				}
			}
		}
		return true
	}
	rec(0, Subst{})
	return found
}

// HasHomomorphism reports whether any homomorphism exists from src
// into dst.
func HasHomomorphism(src, dst []ast.Atom) bool {
	return Homomorphisms(src, dst, func(Subst) bool { return false })
}

// Freeze replaces every variable of the atoms with a distinct fresh
// string constant (the canonical database construction). The returned
// map records the chosen constant for each variable.
func Freeze(atoms []ast.Atom) ([]ast.Atom, map[string]ast.Term) {
	frozen := map[string]ast.Term{}
	out := make([]ast.Atom, len(atoms))
	for i, a := range atoms {
		b := a.Clone()
		for j, t := range b.Args {
			if !t.IsVar() {
				continue
			}
			c, ok := frozen[t.Name]
			if !ok {
				c = ast.S("\x00frz_" + t.Name) // NUL prefix: cannot collide with user constants
				frozen[t.Name] = c
			}
			b.Args[j] = c
		}
		out[i] = b
	}
	return out, frozen
}
