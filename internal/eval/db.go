// Package eval implements bottom-up evaluation of the datalog dialect
// of package ast: naive and semi-naive fixpoint computation with
// hash-indexed joins, negated EDB subgoals, and dense-order comparison
// filters. The evaluator reports instrumentation (rule firings, join
// probes, derived tuples) so that the effect of semantic query
// optimization can be observed independently of wall-clock time.
package eval

import (
	"fmt"
	"sort"
	"strings"
	"sync"

	"repro/internal/ast"
)

// Tuple is a row: a sequence of constant terms.
type Tuple []ast.Term

// Key returns a canonical string key for the tuple.
func (t Tuple) Key() string {
	var b strings.Builder
	for i, v := range t {
		if i > 0 {
			b.WriteByte('\x01')
		}
		b.WriteString(v.Key())
	}
	return b.String()
}

// String renders the tuple as (v1, ..., vn).
func (t Tuple) String() string {
	parts := make([]string, len(t))
	for i, v := range t {
		parts[i] = v.String()
	}
	return "(" + strings.Join(parts, ", ") + ")"
}

// Relation is a set of same-arity tuples with hash indexes built on
// demand for bound-position lookups.
//
// Concurrency: any number of goroutines may read a relation (Len,
// Contains, Tuples, lookup) concurrently — the lazy index build inside
// lookup is internally synchronized. Mutation (Add) requires that no
// reader runs concurrently; the evaluator guarantees this by only
// adding tuples at single-threaded round barriers.
type Relation struct {
	Arity  int
	tuples []Tuple
	seen   map[string]bool
	// mu guards indexes: concurrent probes of the same un-indexed
	// position mask would otherwise race on the lazy build.
	mu sync.RWMutex
	// indexes maps a position-mask key ("0,2") to an index from the
	// key of the values at those positions to tuple slice indices.
	indexes map[string]map[string][]int
}

// NewRelation returns an empty relation of the given arity.
func NewRelation(arity int) *Relation {
	return &Relation{Arity: arity, seen: map[string]bool{}}
}

// Add inserts the tuple, reporting whether it was new. It panics on an
// arity mismatch or a non-constant term.
func (r *Relation) Add(t Tuple) bool {
	if len(t) != r.Arity {
		panic(fmt.Sprintf("eval: arity mismatch: tuple %s into arity-%d relation", t, r.Arity))
	}
	for _, v := range t {
		if v.IsVar() {
			panic("eval: variable in tuple " + t.String())
		}
	}
	k := t.Key()
	if r.seen[k] {
		return false
	}
	r.seen[k] = true
	r.tuples = append(r.tuples, t)
	// Maintain existing indexes incrementally instead of invalidating
	// them: evaluation adds tuples continuously and a full rebuild per
	// growth step would dominate the run time.
	idx := len(r.tuples) - 1
	r.mu.Lock()
	for mk, index := range r.indexes {
		pos := parseMask(mk)
		key := valsKeyAt(t, pos)
		index[key] = append(index[key], idx)
	}
	r.mu.Unlock()
	return true
}

// parseMask inverts maskKey.
func parseMask(mk string) []int {
	if mk == "" {
		return nil
	}
	var out []int
	n := 0
	for i := 0; i < len(mk); i++ {
		if mk[i] == ',' {
			out = append(out, n)
			n = 0
			continue
		}
		n = n*10 + int(mk[i]-'0')
	}
	return append(out, n)
}

// Contains reports membership.
func (r *Relation) Contains(t Tuple) bool { return r.seen[t.Key()] }

// Len returns the number of tuples.
func (r *Relation) Len() int { return len(r.tuples) }

// Tuples returns the stored tuples in insertion order. Callers must
// not modify the slice.
func (r *Relation) Tuples() []Tuple { return r.tuples }

// lookup returns the indices of tuples whose values at positions pos
// equal vals, using (and lazily building) a hash index. It is safe for
// concurrent use by multiple readers: the lazy build is double-checked
// under an RWMutex, so two goroutines probing the same un-indexed
// position mask cannot race.
func (r *Relation) lookup(pos []int, vals []ast.Term) []int {
	mk := maskKey(pos)
	r.mu.RLock()
	idx, ok := r.indexes[mk]
	r.mu.RUnlock()
	if !ok {
		r.mu.Lock()
		idx, ok = r.indexes[mk]
		if !ok {
			idx = map[string][]int{}
			for i, t := range r.tuples {
				k := valsKeyAt(t, pos)
				idx[k] = append(idx[k], i)
			}
			if r.indexes == nil {
				r.indexes = map[string]map[string][]int{}
			}
			r.indexes[mk] = idx
		}
		r.mu.Unlock()
	}
	return idx[valsKey(vals)]
}

func maskKey(pos []int) string {
	var b strings.Builder
	for i, p := range pos {
		if i > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, "%d", p)
	}
	return b.String()
}

func valsKeyAt(t Tuple, pos []int) string {
	var b strings.Builder
	for i, p := range pos {
		if i > 0 {
			b.WriteByte('\x01')
		}
		b.WriteString(t[p].Key())
	}
	return b.String()
}

func valsKey(vals []ast.Term) string {
	var b strings.Builder
	for i, v := range vals {
		if i > 0 {
			b.WriteByte('\x01')
		}
		b.WriteString(v.Key())
	}
	return b.String()
}

// DB is a database: a map from predicate names to relations.
type DB struct {
	rels map[string]*Relation
}

// NewDB returns an empty database.
func NewDB() *DB { return &DB{rels: map[string]*Relation{}} }

// Rel returns the relation for pred, creating an empty one of the
// given arity if absent.
func (db *DB) Rel(pred string, arity int) *Relation {
	r, ok := db.rels[pred]
	if !ok {
		r = NewRelation(arity)
		db.rels[pred] = r
	}
	return r
}

// Lookup returns the relation for pred, or nil if absent.
func (db *DB) Lookup(pred string) *Relation { return db.rels[pred] }

// AddFact inserts a ground atom, reporting whether it was new.
func (db *DB) AddFact(a ast.Atom) bool {
	if !a.Ground() {
		panic("eval: AddFact on non-ground atom " + a.String())
	}
	return db.Rel(a.Pred, a.Arity()).Add(Tuple(a.Args))
}

// AddFacts inserts a batch of ground atoms.
func (db *DB) AddFacts(atoms []ast.Atom) {
	for _, a := range atoms {
		db.AddFact(a)
	}
}

// Contains reports whether the ground atom is present.
func (db *DB) Contains(a ast.Atom) bool {
	r := db.rels[a.Pred]
	if r == nil {
		return false
	}
	return r.Contains(Tuple(a.Args))
}

// Count returns the number of tuples for pred (0 if absent).
func (db *DB) Count(pred string) int {
	if r := db.rels[pred]; r != nil {
		return r.Len()
	}
	return 0
}

// Preds returns the predicate names present, sorted.
func (db *DB) Preds() []string {
	out := make([]string, 0, len(db.rels))
	for p := range db.rels {
		out = append(out, p)
	}
	sort.Strings(out)
	return out
}

// Clone returns a deep copy of the database. The source relations are
// already deduplicated, so tuples and seen keys are copied directly —
// no tuple is re-rendered or re-hashed. Indexes are not copied; the
// clone rebuilds them lazily on first lookup.
func (db *DB) Clone() *DB {
	out := NewDB()
	for p, r := range db.rels {
		nr := &Relation{
			Arity:  r.Arity,
			tuples: append([]Tuple(nil), r.tuples...),
			seen:   make(map[string]bool, len(r.seen)),
		}
		for k := range r.seen {
			nr.seen[k] = true
		}
		out.rels[p] = nr
	}
	return out
}

// Facts returns all tuples of pred as ground atoms, in insertion
// order.
func (db *DB) Facts(pred string) []ast.Atom {
	r := db.rels[pred]
	if r == nil {
		return nil
	}
	out := make([]ast.Atom, r.Len())
	for i, t := range r.tuples {
		out[i] = ast.NewAtom(pred, t...)
	}
	return out
}

// SortedFacts returns all tuples of pred rendered as strings, sorted;
// convenient for order-insensitive comparisons in tests.
func (db *DB) SortedFacts(pred string) []string {
	facts := db.Facts(pred)
	out := make([]string, len(facts))
	for i, f := range facts {
		out[i] = f.String()
	}
	sort.Strings(out)
	return out
}
