package server

import (
	"io"
	"net/http"
	"strings"
	"testing"

	sqo "repro"
)

// deadRuleProgram has a rule whose body instantiates the constraint
// (unsat-body), making p provably empty and q's rule dead.
const deadRuleProgram = `
	p(X) :- a(X, Y), b(Y, X).
	q(X) :- p(X).
	r(X) :- c(X, X).
	r(X) :- p(X), c(X, X).
	?- r.
`

const deadRuleICs = `:- a(X, Y), b(Y, Z).`

func findingIDs(fs []sqo.LintFinding) map[string]int {
	out := map[string]int{}
	for _, f := range fs {
		out[f.ID]++
	}
	return out
}

func TestServerLintEndpoint(t *testing.T) {
	_, ts := newTestServer(t, Config{})

	var resp struct {
		Findings []sqo.LintFinding `json:"findings"`
		Errors   int               `json:"errors"`
		Warnings int               `json:"warnings"`
		Infos    int               `json:"infos"`
		LintMS   float64           `json:"lint_ms"`
	}
	code, raw := doJSON(t, http.MethodPost, ts.URL+"/v1/lint",
		map[string]any{"program": deadRuleProgram, "ics": deadRuleICs}, &resp)
	if code != http.StatusOK {
		t.Fatalf("lint: status %d, body %s", code, raw)
	}
	ids := findingIDs(resp.Findings)
	if ids["unsat-body"] != 1 {
		t.Errorf("want one unsat-body finding, got %v", resp.Findings)
	}
	if ids["dead-rule"] != 2 {
		t.Errorf("want two dead-rule findings, got %v", resp.Findings)
	}
	if resp.Errors != 1 {
		t.Errorf("want 1 error, got %d (body %s)", resp.Errors, raw)
	}
	// Findings carry positions pointing into the submitted source.
	for _, f := range resp.Findings {
		if f.Line == 0 {
			t.Errorf("finding %s/%s has no position", f.Check, f.ID)
		}
	}
}

func TestServerLintEndpointCleanAndErrors(t *testing.T) {
	_, ts := newTestServer(t, Config{})

	var resp struct {
		Findings []sqo.LintFinding `json:"findings"`
		Errors   int               `json:"errors"`
	}
	code, raw := doJSON(t, http.MethodPost, ts.URL+"/v1/lint",
		map[string]any{"program": serverTestProgram}, &resp)
	if code != http.StatusOK {
		t.Fatalf("lint: status %d, body %s", code, raw)
	}
	if resp.Errors != 0 {
		t.Errorf("clean program: want 0 errors, got %d (body %s)", resp.Errors, raw)
	}

	var errResp struct {
		Code string `json:"code"`
	}
	code, _ = doJSON(t, http.MethodPost, ts.URL+"/v1/lint",
		map[string]any{"program": "p(X :-"}, &errResp)
	if code != http.StatusBadRequest || errResp.Code != "parse_error" {
		t.Errorf("malformed program: status %d code %q, want 400 parse_error", code, errResp.Code)
	}
}

func TestServerOptimizeCarriesDiagnostics(t *testing.T) {
	s, ts := newTestServer(t, Config{})

	var resp struct {
		Diagnostics []sqo.LintFinding `json:"diagnostics"`
	}
	code, raw := doJSON(t, http.MethodPost, ts.URL+"/v1/optimize",
		map[string]any{"program": deadRuleProgram, "ics": deadRuleICs}, &resp)
	if code != http.StatusOK {
		t.Fatalf("optimize: status %d, body %s", code, raw)
	}
	if findingIDs(resp.Diagnostics)["unsat-body"] != 1 {
		t.Errorf("optimize response missing unsat-body diagnostic: %s", raw)
	}
	if s.Metrics().LintFindings.Load() == 0 {
		t.Error("lint findings metric not incremented")
	}
	if s.Metrics().LintRuns.Load() == 0 {
		t.Error("lint runs metric not incremented")
	}
}

func TestServerViewCreateCarriesDiagnostics(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	registerDataset(t, ts.URL, "d", `c(1, 1). a(1, 2). b(2, 1).`)

	var resp struct {
		Diagnostics []sqo.LintFinding `json:"diagnostics"`
		AnswerCount int               `json:"answer_count"`
	}
	code, raw := doJSON(t, http.MethodPost, ts.URL+"/v1/datasets/d/views/v",
		map[string]any{"program": deadRuleProgram, "ics": deadRuleICs}, &resp)
	if code != http.StatusOK {
		t.Fatalf("view create: status %d, body %s", code, raw)
	}
	if findingIDs(resp.Diagnostics)["dead-rule"] != 2 {
		t.Errorf("view response missing dead-rule diagnostics: %s", raw)
	}

	// GET on the same view is a read, not a registration: no
	// diagnostics attached.
	code, raw = doJSON(t, http.MethodGet, ts.URL+"/v1/datasets/d/views/v", nil, &resp)
	if code != http.StatusOK {
		t.Fatalf("view get: status %d, body %s", code, raw)
	}
	if strings.Contains(string(raw), "diagnostics") {
		t.Errorf("view GET must not carry diagnostics: %s", raw)
	}
}

func TestServerMetricsExposeLintCounters(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	doJSON(t, http.MethodPost, ts.URL+"/v1/lint",
		map[string]any{"program": deadRuleProgram, "ics": deadRuleICs}, nil)

	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	body := string(raw)
	if !strings.Contains(body, "sqod_lint_runs_total 1") {
		t.Errorf("metrics missing sqod_lint_runs_total 1")
	}
	if !strings.Contains(body, "sqod_lint_findings_total 5") {
		t.Errorf("metrics missing sqod_lint_findings_total 5")
	}
}
