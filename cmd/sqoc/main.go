// sqoc — the semantic query optimizer compiler.
//
// Reads a datalog source (rules, integrity constraints, an optional
// '?- pred.' query declaration, and optionally ground facts) from a
// file or standard input, rewrites the program to completely
// incorporate the constraints, and prints the rewritten program. With
// facts present (or a separate facts file) it also evaluates both
// versions and reports the answers and the work saved.
//
// Usage:
//
//	sqoc [-facts file] [-explain] [-baseline] [-stats] [-parallel n] [file]
package main

import (
	"flag"
	"fmt"
	"io"
	"log"
	"os"

	sqo "repro"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("sqoc: ")
	factsPath := flag.String("facts", "", "file of ground facts to evaluate both programs on")
	explain := flag.Bool("explain", false, "print the query forest (Figure 1 style)")
	baseline := flag.Bool("baseline", false, "also print the [CGM88] per-rule baseline rewriting")
	stats := flag.Bool("stats", false, "print query-tree statistics")
	why := flag.Bool("why", false, "print a derivation tree for each answer (requires facts)")
	parallel := flag.Int("parallel", 0, "evaluation workers (0 = one per CPU, 1 = sequential)")
	flag.Parse()

	src, err := readInput(flag.Arg(0))
	if err != nil {
		log.Fatal(err)
	}
	unit, err := sqo.Parse(src)
	if err != nil {
		log.Fatal(err)
	}
	if unit.Program.Query == "" {
		log.Fatal("no query declaration ('?- pred.') in input")
	}

	res, err := sqo.Optimize(unit.Program, unit.ICs)
	if err != nil {
		log.Fatal(err)
	}
	for _, w := range res.Warnings {
		fmt.Fprintf(os.Stderr, "warning: %s\n", w)
	}
	if !res.Satisfiable {
		fmt.Println("% the query predicate is UNSATISFIABLE with respect to the constraints")
	}
	fmt.Print(sqo.FormatProgram(res.Program))

	if *baseline {
		fmt.Println("\n% --- [CGM88] per-rule baseline ---")
		fmt.Print(sqo.FormatProgram(sqo.BaselineOptimize(unit.Program, unit.ICs)))
	}
	if *explain {
		fmt.Println("\n% --- query forest ---")
		fmt.Print(sqo.Explain(res))
	}
	if *stats {
		s := res.Tree.Stats()
		fmt.Printf("\n%% goal nodes=%d (live %d) rule nodes=%d (live %d) roots=%d (live %d) adornments=%d\n",
			s.GoalNodes, s.LiveGoals, s.RuleNodes, s.LiveRules, s.Roots, s.LiveRoots, s.Adornments)
	}

	facts := unit.Facts
	if *factsPath != "" {
		fsrc, err := os.ReadFile(*factsPath)
		if err != nil {
			log.Fatal(err)
		}
		extra, err := sqo.ParseFacts(string(fsrc))
		if err != nil {
			log.Fatal(err)
		}
		facts = append(facts, extra...)
	}
	if len(facts) > 0 {
		db := sqo.NewDBFrom(facts)
		opts := sqo.EvalOptions{Seminaive: true, UseIndex: true, Workers: *parallel}
		origTuples, origStats, err := sqo.QueryWith(unit.Program, db, opts)
		if err != nil {
			log.Fatal(err)
		}
		optTuples, optStats, err := sqo.QueryWith(res.Program, db, opts)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("\n%% original : %d answers, %d tuples derived, %d join probes\n",
			len(origTuples), origStats.TuplesDerived, origStats.JoinProbes)
		fmt.Printf("%% optimized: %d answers, %d tuples derived, %d join probes\n",
			len(optTuples), optStats.TuplesDerived, optStats.JoinProbes)
		for _, t := range optTuples {
			fmt.Printf("%s%s.\n", unit.Program.Query, t)
		}
		if *why {
			_, explain, _, err := sqo.EvalProv(unit.Program, db)
			if err != nil {
				log.Fatal(err)
			}
			for _, t := range origTuples {
				fact := sqo.Atom{Pred: unit.Program.Query, Args: t}
				d, err := explain(fact)
				if err != nil {
					log.Fatal(err)
				}
				fmt.Printf("\n%% derivation of %s:\n%s", fact, d)
			}
		}
	}
}

func readInput(path string) (string, error) {
	if path == "" || path == "-" {
		b, err := io.ReadAll(os.Stdin)
		return string(b), err
	}
	b, err := os.ReadFile(path)
	return string(b), err
}
