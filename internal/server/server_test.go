package server

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"net/http/httptest"
	"reflect"
	"strings"
	"sync"
	"testing"
	"time"
)

func newTestServer(t *testing.T, cfg Config) (*Server, *httptest.Server) {
	t.Helper()
	if cfg.Logger == nil {
		cfg.Logger = slog.New(slog.NewTextHandler(io.Discard, nil))
	}
	s := New(cfg)
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)
	return s, ts
}

func doJSON(t *testing.T, method, url string, body any, out any) (int, []byte) {
	t.Helper()
	var rd io.Reader
	if body != nil {
		b, err := json.Marshal(body)
		if err != nil {
			t.Fatal(err)
		}
		rd = bytes.NewReader(b)
	}
	req, err := http.NewRequest(method, url, rd)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if out != nil {
		if err := json.Unmarshal(raw, out); err != nil {
			t.Fatalf("unmarshal %s %s → %q: %v", method, url, raw, err)
		}
	}
	return resp.StatusCode, raw
}

const serverTestFacts = `
	step(1, 2). step(2, 3). step(3, 4). step(2, 5). step(5, 4).
	startPoint(1). startPoint(2).
	endPoint(4). endPoint(5).
`

const serverTestProgram = `
	path(X, Y) :- step(X, Y).
	path(X, Y) :- step(X, Z), path(Z, Y).
	goodPath(X, Y) :- startPoint(X), path(X, Y), endPoint(Y).
	?- goodPath.
`

const serverTestICs = `:- startPoint(X), endPoint(Y), Y <= X.`

func registerDataset(t *testing.T, base, name, facts string) {
	t.Helper()
	req, err := http.NewRequest(http.MethodPut, base+"/v1/datasets/"+name, strings.NewReader(facts))
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		b, _ := io.ReadAll(resp.Body)
		t.Fatalf("dataset registration: %d %s", resp.StatusCode, b)
	}
}

func TestServerEndToEnd(t *testing.T) {
	s, ts := newTestServer(t, Config{})
	registerDataset(t, ts.URL, "quickstart", serverTestFacts)

	// Dataset is visible.
	var infos []DatasetInfo
	if code, _ := doJSON(t, http.MethodGet, ts.URL+"/v1/datasets", nil, &infos); code != http.StatusOK {
		t.Fatalf("list datasets: %d", code)
	}
	if len(infos) != 1 || infos[0].Name != "quickstart" || infos[0].Facts != 9 {
		t.Fatalf("dataset list = %+v", infos)
	}

	// First optimized query: cache miss.
	var r1 queryResponse
	code, raw := doJSON(t, http.MethodPost, ts.URL+"/v1/query", queryRequest{
		Program: serverTestProgram,
		ICs:     serverTestICs,
		Dataset: "quickstart",
	}, &r1)
	if code != http.StatusOK {
		t.Fatalf("query: %d %s", code, raw)
	}
	if r1.CacheHit {
		t.Fatal("first query reported a cache hit")
	}
	wantAnswers := []string{"(1, 4)", "(1, 5)", "(2, 4)", "(2, 5)"}
	if !reflect.DeepEqual(r1.Answers, wantAnswers) {
		t.Fatalf("answers = %v, want %v", r1.Answers, wantAnswers)
	}
	if r1.Stats.Rounds == 0 || r1.Stats.TuplesDerived == 0 {
		t.Fatalf("stats not populated: %+v", r1.Stats)
	}

	// Second identical query: cache hit, identical answers.
	var r2 queryResponse
	if code, raw := doJSON(t, http.MethodPost, ts.URL+"/v1/query", queryRequest{
		Program: serverTestProgram,
		ICs:     serverTestICs,
		Dataset: "quickstart",
	}, &r2); code != http.StatusOK {
		t.Fatalf("second query: %d %s", code, raw)
	}
	if !r2.CacheHit {
		t.Fatal("second identical query missed the cache")
	}
	if !reflect.DeepEqual(r2.Answers, r1.Answers) {
		t.Fatalf("cached answers diverge: %v vs %v", r2.Answers, r1.Answers)
	}
	if r2.Stats != r1.Stats {
		t.Fatalf("cached stats diverge: %+v vs %+v", r2.Stats, r1.Stats)
	}

	// Unoptimized evaluation agrees on answers (differential check).
	noOpt := false
	var r3 queryResponse
	if code, raw := doJSON(t, http.MethodPost, ts.URL+"/v1/query", queryRequest{
		Program:  serverTestProgram,
		ICs:      serverTestICs,
		Dataset:  "quickstart",
		Optimize: &noOpt,
	}, &r3); code != http.StatusOK {
		t.Fatalf("unoptimized query: %d %s", code, raw)
	}
	if !reflect.DeepEqual(r3.Answers, r1.Answers) {
		t.Fatalf("optimized and unoptimized answers diverge: %v vs %v", r1.Answers, r3.Answers)
	}

	// Three entries: the Levy-Sagiv rewrite, the elim verdict for the
	// optimized program, and the elim verdict for the raw program the
	// unoptimized query evaluated.
	if n := s.Cache().Len(); n != 3 {
		t.Fatalf("cache entries = %d, want 3", n)
	}
	if hits := s.Metrics().CacheHits.Load(); hits == 0 {
		t.Fatal("metrics report zero cache hits")
	}
}

func TestServerConcurrentIdenticalRequests(t *testing.T) {
	s, ts := newTestServer(t, Config{MaxInflight: 32})
	registerDataset(t, ts.URL, "d", serverTestFacts)

	const n = 12
	responses := make([]queryResponse, n)
	codes := make([]int, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			codes[i], _ = doJSONNoFatal(ts.URL+"/v1/query", queryRequest{
				Program: serverTestProgram,
				ICs:     serverTestICs,
				Dataset: "d",
			}, &responses[i])
		}(i)
	}
	wg.Wait()

	for i := 0; i < n; i++ {
		if codes[i] != http.StatusOK {
			t.Fatalf("request %d: status %d", i, codes[i])
		}
		if !reflect.DeepEqual(responses[i].Answers, responses[0].Answers) {
			t.Fatalf("request %d: answers diverge: %v vs %v", i, responses[i].Answers, responses[0].Answers)
		}
	}
	// Two entries and two misses: one Levy-Sagiv rewrite plus one elim
	// verdict, each computed exactly once across all n requests.
	if got := s.Cache().Len(); got != 2 {
		t.Fatalf("concurrent identical requests created %d cache entries, want 2", got)
	}
	st := s.Cache().Stats()
	if st.Misses != 2 {
		t.Fatalf("misses = %d, want exactly 2 (optimize + elim)", st.Misses)
	}
	if st.Hits != 2*n-2 {
		t.Fatalf("hits = %d, want %d", st.Hits, 2*n-2)
	}
}

// doJSONNoFatal is doJSON for use inside goroutines (no *testing.T).
func doJSONNoFatal(url string, body any, out any) (int, []byte) {
	b, err := json.Marshal(body)
	if err != nil {
		return 0, nil
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(b))
	if err != nil {
		return 0, nil
	}
	defer resp.Body.Close()
	raw, _ := io.ReadAll(resp.Body)
	if out != nil {
		_ = json.Unmarshal(raw, out)
	}
	return resp.StatusCode, raw
}

func TestServerAdmissionControl(t *testing.T) {
	s, ts := newTestServer(t, Config{MaxInflight: 2})
	registerDataset(t, ts.URL, "d", serverTestFacts)

	// Occupy both slots directly; the next request must 429 fast.
	rel1, ok := s.admit()
	if !ok {
		t.Fatal("first admit failed")
	}
	rel2, ok := s.admit()
	if !ok {
		t.Fatal("second admit failed")
	}
	start := time.Now()
	var eb errorBody
	code, _ := doJSON(t, http.MethodPost, ts.URL+"/v1/query", queryRequest{
		Program: serverTestProgram,
		Dataset: "d",
	}, &eb)
	if code != http.StatusTooManyRequests {
		t.Fatalf("status = %d, want 429", code)
	}
	if eb.Code != "overloaded" {
		t.Fatalf("error code = %q, want overloaded", eb.Code)
	}
	if elapsed := time.Since(start); elapsed > 2*time.Second {
		t.Fatalf("429 took %v; admission rejection must be fast", elapsed)
	}
	if got := s.Metrics().AdmissionRejections.Load(); got != 1 {
		t.Fatalf("rejections = %d, want 1", got)
	}
	rel1()
	rel2()

	// Slots released: the same request now succeeds.
	if code, raw := doJSON(t, http.MethodPost, ts.URL+"/v1/query", queryRequest{
		Program: serverTestProgram,
		Dataset: "d",
	}, nil); code != http.StatusOK {
		t.Fatalf("post-release query: %d %s", code, raw)
	}
}

func TestServerQueryTimeout(t *testing.T) {
	s, ts := newTestServer(t, Config{})
	// A long chain makes the fixpoint slow enough that a 1ms deadline
	// fires mid-evaluation.
	var facts strings.Builder
	for i := 0; i < 400; i++ {
		fmt.Fprintf(&facts, "e(%d, %d).\n", i, i+1)
	}
	registerDataset(t, ts.URL, "chain", facts.String())

	var eb errorBody
	code, _ := doJSON(t, http.MethodPost, ts.URL+"/v1/query", queryRequest{
		Program:   "p(X, Y) :- e(X, Y).\np(X, Y) :- e(X, Z), p(Z, Y).\n?- p.",
		Dataset:   "chain",
		TimeoutMS: 1,
	}, &eb)
	if code != http.StatusGatewayTimeout {
		t.Fatalf("status = %d (%+v), want 504", code, eb)
	}
	if eb.Code != "timeout" {
		t.Fatalf("error code = %q, want timeout", eb.Code)
	}
	if got := s.Metrics().QueryTimeouts.Load(); got != 1 {
		t.Fatalf("timeout counter = %d, want 1", got)
	}
}

func TestServerBudgetExceeded(t *testing.T) {
	s, ts := newTestServer(t, Config{})
	var facts strings.Builder
	for i := 0; i < 100; i++ {
		fmt.Fprintf(&facts, "e(%d, %d).\n", i, i+1)
	}
	registerDataset(t, ts.URL, "chain", facts.String())

	var eb errorBody
	code, _ := doJSON(t, http.MethodPost, ts.URL+"/v1/query", queryRequest{
		Program:   "p(X, Y) :- e(X, Y).\np(X, Y) :- e(X, Z), p(Z, Y).\n?- p.",
		Dataset:   "chain",
		MaxTuples: 10,
	}, &eb)
	if code != http.StatusUnprocessableEntity {
		t.Fatalf("status = %d (%+v), want 422", code, eb)
	}
	if eb.Code != "budget_exceeded" {
		t.Fatalf("error code = %q, want budget_exceeded", eb.Code)
	}
	if got := s.Metrics().QueryBudgets.Load(); got != 1 {
		t.Fatalf("budget counter = %d, want 1", got)
	}
}

func TestServerErrors(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	registerDataset(t, ts.URL, "d", serverTestFacts)

	cases := []struct {
		name     string
		req      queryRequest
		wantCode int
		wantErr  string
	}{
		{"unknown dataset", queryRequest{Program: serverTestProgram, Dataset: "nope"}, http.StatusNotFound, "unknown_dataset"},
		{"no facts source", queryRequest{Program: serverTestProgram}, http.StatusBadRequest, "bad_request"},
		{"parse error", queryRequest{Program: "p(X :-", Dataset: "d"}, http.StatusBadRequest, "parse_error"},
		{"no query decl", queryRequest{Program: "p(X, Y) :- e(X, Y).", Dataset: "d"}, http.StatusBadRequest, "bad_request"},
		{"bad ics", queryRequest{Program: serverTestProgram, ICs: ":- nope(", Dataset: "d"}, http.StatusBadRequest, "parse_error"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			var eb errorBody
			code, raw := doJSON(t, http.MethodPost, ts.URL+"/v1/query", tc.req, &eb)
			if code != tc.wantCode {
				t.Fatalf("status = %d %s, want %d", code, raw, tc.wantCode)
			}
			if eb.Code != tc.wantErr {
				t.Fatalf("error code = %q, want %q", eb.Code, tc.wantErr)
			}
		})
	}
}

func TestServerInlineFactsDoNotMutateDataset(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	registerDataset(t, ts.URL, "d", serverTestFacts)

	// Query with extra inline facts that add a new answer.
	var r1 queryResponse
	if code, raw := doJSON(t, http.MethodPost, ts.URL+"/v1/query", queryRequest{
		Program: serverTestProgram,
		Dataset: "d",
		Facts:   "startPoint(3).",
	}, &r1); code != http.StatusOK {
		t.Fatalf("query: %d %s", code, raw)
	}
	// The same query without inline facts must not see them.
	var r2 queryResponse
	if code, raw := doJSON(t, http.MethodPost, ts.URL+"/v1/query", queryRequest{
		Program: serverTestProgram,
		Dataset: "d",
	}, &r2); code != http.StatusOK {
		t.Fatalf("query: %d %s", code, raw)
	}
	if len(r1.Answers) <= len(r2.Answers) {
		t.Fatalf("inline facts had no effect: %d vs %d answers", len(r1.Answers), len(r2.Answers))
	}
	want := []string{"(1, 4)", "(1, 5)", "(2, 4)", "(2, 5)"}
	if !reflect.DeepEqual(r2.Answers, want) {
		t.Fatalf("dataset was mutated by inline facts: %v", r2.Answers)
	}
}

func TestServerOptimizeEndpoint(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	var r1, r2 optimizeResponse
	if code, raw := doJSON(t, http.MethodPost, ts.URL+"/v1/optimize", optimizeRequest{
		Program: serverTestProgram, ICs: serverTestICs,
	}, &r1); code != http.StatusOK {
		t.Fatalf("optimize: %d %s", code, raw)
	}
	if r1.CacheHit || !r1.Satisfiable || r1.Program == "" || r1.Explain == "" {
		t.Fatalf("bad first response: %+v", r1)
	}
	if !strings.Contains(r1.Program, "?- goodPath.") {
		t.Fatalf("rewritten program lacks query declaration:\n%s", r1.Program)
	}
	if code, _ := doJSON(t, http.MethodPost, ts.URL+"/v1/optimize", optimizeRequest{
		Program: serverTestProgram, ICs: serverTestICs,
	}, &r2); code != http.StatusOK {
		t.Fatal("second optimize failed")
	}
	if !r2.CacheHit {
		t.Fatal("second identical optimize missed the cache")
	}
	if r2.Program != r1.Program || r2.Explain != r1.Explain {
		t.Fatal("cached optimize output diverges from fresh output")
	}
}

func TestServerMetricsEndpoint(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	registerDataset(t, ts.URL, "d", serverTestFacts)
	for i := 0; i < 2; i++ {
		if code, raw := doJSON(t, http.MethodPost, ts.URL+"/v1/query", queryRequest{
			Program: serverTestProgram, ICs: serverTestICs, Dataset: "d",
		}, nil); code != http.StatusOK {
			t.Fatalf("query: %d %s", code, raw)
		}
	}
	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, _ := io.ReadAll(resp.Body)
	text := string(body)
	for _, want := range []string{
		"sqod_cache_hits_total 2",
		"sqod_cache_misses_total 2",
		"sqod_datasets 1",
		"sqod_eval_rounds_total",
		"sqod_tuples_derived_total",
		`sqod_requests_total{endpoint="query",code="200"} 2`,
		`sqod_request_seconds_bucket{endpoint="query",le="+Inf"} 2`,
		"sqod_inflight_evals 0",
	} {
		if !strings.Contains(text, want) {
			t.Fatalf("/metrics missing %q:\n%s", want, text)
		}
	}
	// Healthz while we're here.
	hr, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	hr.Body.Close()
	if hr.StatusCode != http.StatusOK {
		t.Fatalf("healthz: %d", hr.StatusCode)
	}
}
