// benchdiff compares two sqobench JSON reports (the committed BENCH_*.json
// baseline vs a fresh run) and prints a per-row markdown delta table,
// suitable for piping into a CI job summary.
//
// Usage:
//
//	benchdiff -baseline BENCH_3.json -current bench3.json [-label P3]
//
// Rows are matched by the concatenation of their string-valued fields
// (workload, engine, policy, ...). Numeric fields split into two
// classes:
//
//   - Timing and allocation fields (ns_op, plan_ns, run_ns, *_ns,
//     allocs_op) are noisy on shared runners: a row regresses only when
//     the current value exceeds 2x the baseline AND the absolute growth
//     clears a noise floor (250µs for timings), so micro-measurements
//     cannot flap the job.
//   - Peak materialized tuples (peak_tuples) is deterministic but only
//     gates the run under -peak-mem: the column exists to catch memory
//     regressions in the goal-directed/streaming paths (P8), and the
//     flag lets jobs opt in per experiment. Without the flag, growth is
//     reported as informational.
//   - Everything else (probes, answers, derived, reorders) is work the
//     engine does deterministically; any change is reported, and growth
//     counts as a regression.
//
// Exit status: 0 when no row regressed, 1 on regression, 2 on usage or
// parse errors. Rows present on only one side are reported but never
// fail the run (experiments gain and lose cases across PRs), and the
// same goes for metrics present on only one side of a matched row — a
// freshly added column (or one retired from the baseline) is
// informational, not a regression.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"log"
	"os"
	"sort"
	"strings"
)

type report struct {
	Rows []map[string]any `json:"results"`
}

// timingFactor is the noise-tolerant regression threshold for wall
// clock and allocation counts.
const timingFactor = 2.0

// timingFloorNs: timing deltas under this absolute growth never count
// as regressions, whatever the ratio (micro-benchmarks double from
// scheduler jitter alone).
const timingFloorNs = 250_000.0

func main() {
	log.SetFlags(0)
	log.SetPrefix("benchdiff: ")
	baselinePath := flag.String("baseline", "", "committed baseline JSON (required)")
	currentPath := flag.String("current", "", "freshly generated JSON (required)")
	label := flag.String("label", "", "experiment label for the table heading")
	flag.BoolVar(&gatePeakMem, "peak-mem", false, "fail the run when peak materialized tuples (peak_tuples) grow")
	flag.Parse()
	if *baselinePath == "" || *currentPath == "" {
		flag.Usage()
		os.Exit(2)
	}

	base, err := load(*baselinePath)
	if err != nil {
		log.Print(err)
		os.Exit(2)
	}
	cur, err := load(*currentPath)
	if err != nil {
		log.Print(err)
		os.Exit(2)
	}

	if *label != "" {
		fmt.Printf("### %s: %s vs %s\n\n", *label, *baselinePath, *currentPath)
	}
	if diff(os.Stdout, base, cur) {
		fmt.Println("\n**regression detected** (see verdicts above)")
		os.Exit(1)
	}
	fmt.Println("\nno regressions")
}

// diff prints the per-row markdown delta table and reports whether any
// metric regressed. Metrics are compared over the union of both rows'
// numeric fields: a metric only in the current run ("new metric") or
// only in the baseline ("missing from current") is reported
// informationally instead of being silently skipped or misjudged
// against an implicit zero.
func diff(w io.Writer, base, cur *report) bool {
	fmt.Fprintln(w, "| row | metric | baseline | current | delta | verdict |")
	fmt.Fprintln(w, "|---|---|---:|---:|---:|---|")

	regressed := false
	seen := map[string]bool{}
	for _, brow := range base.Rows {
		k := rowKey(brow)
		seen[k] = true
		crow, ok := findRow(cur.Rows, k)
		if !ok {
			fmt.Fprintf(w, "| %s | — | — | — | — | missing from current (info) |\n", k)
			continue
		}
		for _, metric := range unionNumericFields(brow, crow) {
			bv, bok := numField(brow, metric)
			cv, cok := numField(crow, metric)
			switch {
			case !bok:
				fmt.Fprintf(w, "| %s | %s | — | %s | — | new metric (info) |\n",
					k, metric, formatVal(metric, cv))
				continue
			case !cok:
				fmt.Fprintf(w, "| %s | %s | %s | — | — | missing from current (info) |\n",
					k, metric, formatVal(metric, bv))
				continue
			}
			verdict, bad := judge(metric, bv, cv)
			if bad {
				regressed = true
			}
			if verdict == "" {
				continue // unchanged and uninteresting
			}
			fmt.Fprintf(w, "| %s | %s | %s | %s | %+.1f%% | %s |\n",
				k, metric, formatVal(metric, bv), formatVal(metric, cv), pct(bv, cv), verdict)
		}
	}
	for _, crow := range cur.Rows {
		if k := rowKey(crow); !seen[k] {
			fmt.Fprintf(w, "| %s | — | — | — | — | new row (info) |\n", k)
		}
	}
	return regressed
}

func load(path string) (*report, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var r report
	if err := json.Unmarshal(data, &r); err != nil {
		return nil, fmt.Errorf("%s: %v", path, err)
	}
	if len(r.Rows) == 0 {
		return nil, fmt.Errorf("%s: no results", path)
	}
	return &r, nil
}

// rowKey joins the string-valued fields in sorted field order, so rows
// match by identity (workload, engine, policy, ...) regardless of
// which experiment produced them.
func rowKey(row map[string]any) string {
	keys := make([]string, 0, len(row))
	for k, v := range row {
		if _, ok := v.(string); ok {
			keys = append(keys, k)
		}
	}
	sort.Strings(keys)
	parts := make([]string, len(keys))
	for i, k := range keys {
		parts[i] = row[k].(string)
	}
	return strings.Join(parts, " / ")
}

func findRow(rows []map[string]any, key string) (map[string]any, bool) {
	for _, r := range rows {
		if rowKey(r) == key {
			return r, true
		}
	}
	return nil, false
}

// unionNumericFields returns the sorted union of both rows' numeric
// field names, so a column present on only one side still gets a line
// in the table.
func unionNumericFields(a, b map[string]any) []string {
	set := map[string]bool{}
	for _, row := range []map[string]any{a, b} {
		for k, v := range row {
			if _, ok := v.(float64); ok {
				set[k] = true
			}
		}
	}
	out := make([]string, 0, len(set))
	for k := range set {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

func numField(row map[string]any, k string) (float64, bool) {
	f, ok := row[k].(float64)
	return f, ok
}

func isTiming(metric string) bool {
	return strings.HasSuffix(metric, "_ns") || metric == "ns_op" || metric == "allocs_op"
}

// gatePeakMem is the -peak-mem flag: when set, growth in the
// peak-materialized-tuples column is a regression rather than an
// informational delta.
var gatePeakMem bool

// judge classifies one metric delta. The empty verdict suppresses the
// row (unchanged deterministic metric); bad marks a regression.
func judge(metric string, base, cur float64) (verdict string, bad bool) {
	if isTiming(metric) {
		grew := cur > timingFactor*base
		if strings.HasSuffix(metric, "_ns") || metric == "ns_op" {
			grew = grew && cur-base > timingFloorNs
		}
		if grew {
			return "**slower >2x**", true
		}
		if base > 0 && cur < base/timingFactor {
			return "faster", false
		}
		return "ok", false
	}
	if metric == "peak_tuples" && !gatePeakMem {
		switch {
		case cur == base:
			return "", false
		case cur > base:
			return "more peak memory (info; gate with -peak-mem)", false
		default:
			return "less peak memory", false
		}
	}
	switch {
	case cur == base:
		return "", false
	case cur > base:
		if metric == "peak_tuples" {
			return "**more peak memory**", true
		}
		return "**more work**", true
	default:
		return "less work", false
	}
}

func pct(base, cur float64) float64 {
	if base == 0 {
		return 0
	}
	return 100 * (cur - base) / base
}

func formatVal(metric string, v float64) string {
	if strings.HasSuffix(metric, "_ns") || metric == "ns_op" {
		switch {
		case v >= 1e9:
			return fmt.Sprintf("%.2fs", v/1e9)
		case v >= 1e6:
			return fmt.Sprintf("%.1fms", v/1e6)
		case v >= 1e3:
			return fmt.Sprintf("%.0fµs", v/1e3)
		}
		return fmt.Sprintf("%.0fns", v)
	}
	return fmt.Sprintf("%.0f", v)
}
