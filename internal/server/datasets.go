package server

import (
	"context"
	"sort"
	"sync"
	"time"

	sqo "repro"
)

// dataset is one registered fact set plus its attached materialized
// views. The query-facing database is an immutable snapshot: every
// mutation rebuilds a replacement from the canonical fact set and
// swaps the pointer, so evaluations keep reading whichever snapshot
// they resolved. Attached views are maintained incrementally — the
// same add/retract batch that mutates the fact set is pushed through
// sqo.View.Apply, which propagates deltas instead of re-evaluating.
type dataset struct {
	name string

	mu           sync.Mutex
	facts        map[string]sqo.Atom // canonical fact set, keyed by rendering
	db           *sqo.DB             // immutable snapshot of facts
	lastModified time.Time
	views        map[string]*matView
}

// matView is one materialized view attached to a dataset.
type matView struct {
	name      string
	program   *sqo.Program
	optimized bool
	view      *sqo.View
	createdAt time.Time
}

func newDataset(name string, facts []sqo.Atom, now time.Time) *dataset {
	ds := &dataset{
		name:         name,
		facts:        map[string]sqo.Atom{},
		views:        map[string]*matView{},
		lastModified: now,
	}
	for _, a := range facts {
		ds.facts[a.String()] = a
	}
	ds.db = ds.buildDB()
	return ds
}

// buildDB renders the canonical fact set as a fresh database in
// key-sorted order, so evaluation and provenance are independent of
// the dataset's update history. Callers hold ds.mu (or own the
// dataset exclusively, as newDataset does).
func (d *dataset) buildDB() *sqo.DB {
	keys := make([]string, 0, len(d.facts))
	for k := range d.facts {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	db := sqo.NewDB()
	for _, k := range keys {
		db.AddFact(d.facts[k])
	}
	return db
}

// snapshot returns the current immutable database.
func (d *dataset) snapshot() *sqo.DB {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.db
}

// DatasetInfo describes one registered dataset over the wire.
type DatasetInfo struct {
	Name         string         `json:"name"`
	Facts        int            `json:"facts"`
	Predicates   map[string]int `json:"predicates"`
	LastModified time.Time      `json:"last_modified"`
	Views        []string       `json:"views,omitempty"`
}

func (d *dataset) describe() DatasetInfo {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.describeLocked()
}

func (d *dataset) describeLocked() DatasetInfo {
	preds := map[string]int{}
	for _, p := range d.db.Preds() {
		preds[p] = d.db.Count(p)
	}
	views := make([]string, 0, len(d.views))
	for name := range d.views {
		views = append(views, name)
	}
	sort.Strings(views)
	return DatasetInfo{
		Name:         d.name,
		Facts:        len(d.facts),
		Predicates:   preds,
		LastModified: d.lastModified,
		Views:        views,
	}
}

// viewUpdate reports the effect of one dataset mutation on one
// attached view.
type viewUpdate struct {
	Name           string  `json:"name"`
	AnswersAdded   int     `json:"answers_added"`
	AnswersRemoved int     `json:"answers_removed"`
	ApplyMS        float64 `json:"apply_ms"`
	// Error is set when maintenance failed (deadline, budget); the view
	// is left broken and rebuilds itself on next access.
	Error string `json:"error,omitempty"`
}

// factUpdate is the outcome of one mutation on a dataset.
type factUpdate struct {
	added, removed int
	views          []viewUpdate
}

// updateLocked applies retractions then insertions to the canonical
// fact set (an atom appearing in both is a no-op, matching
// sqo.View.Apply's delete-then-insert semantics), swaps in a rebuilt
// snapshot, and pushes the same batch through every attached view. A
// view whose maintenance fails is left broken — it repairs itself on
// the next read — so the dataset mutation itself always succeeds.
// Callers hold d.mu.
func (d *dataset) updateLocked(ctx context.Context, adds, dels []sqo.Atom, now time.Time) factUpdate {
	var up factUpdate
	addKeys := make(map[string]bool, len(adds))
	for _, a := range adds {
		addKeys[a.String()] = true
	}
	for _, a := range dels {
		k := a.String()
		if addKeys[k] {
			continue
		}
		if _, ok := d.facts[k]; ok {
			delete(d.facts, k)
			up.removed++
		}
	}
	for _, a := range adds {
		k := a.String()
		if _, ok := d.facts[k]; !ok {
			d.facts[k] = a
			up.added++
		}
	}
	d.db = d.buildDB()
	d.lastModified = now

	names := make([]string, 0, len(d.views))
	for name := range d.views {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		mv := d.views[name]
		start := time.Now()
		ch, err := mv.view.ApplyCtx(ctx, adds, dels)
		vu := viewUpdate{
			Name:    name,
			ApplyMS: float64(time.Since(start).Microseconds()) / 1000,
		}
		if err != nil {
			vu.Error = err.Error()
		} else {
			vu.AnswersAdded = len(ch.Added)
			vu.AnswersRemoved = len(ch.Removed)
		}
		up.views = append(up.views, vu)
	}
	return up
}

// diffLocked computes the adds and retracts that turn the current
// fact set into target, for PUT-replacement of a dataset with live
// views. Callers hold d.mu.
func (d *dataset) diffLocked(target []sqo.Atom) (adds, dels []sqo.Atom) {
	targetKeys := make(map[string]bool, len(target))
	for _, a := range target {
		k := a.String()
		if !targetKeys[k] {
			targetKeys[k] = true
			if _, ok := d.facts[k]; !ok {
				adds = append(adds, a)
			}
		}
	}
	for k, a := range d.facts {
		if !targetKeys[k] {
			dels = append(dels, a)
		}
	}
	sort.Slice(dels, func(i, j int) bool { return dels[i].String() < dels[j].String() })
	return adds, dels
}

// datasetStore is the concurrent registry of named datasets.
type datasetStore struct {
	mu      sync.RWMutex
	byName  map[string]*dataset
	metrics *Metrics
}

func newDatasetStore(m *Metrics) *datasetStore {
	return &datasetStore{byName: map[string]*dataset{}, metrics: m}
}

// create registers a new dataset; created is false (and the existing
// dataset is returned) when the name is already taken. A non-nil
// persist callback runs while the registry lock is held, after the
// name is known to be free and before the dataset becomes visible: a
// persist error aborts the create. Holding the lock across the
// write-ahead append pins the WAL order to the registry order — no
// fact append for the dataset can reach the log before its create
// record.
func (st *datasetStore) create(name string, facts []sqo.Atom, now time.Time, persist func() error) (ds *dataset, created bool, err error) {
	st.mu.Lock()
	if existing, ok := st.byName[name]; ok {
		st.mu.Unlock()
		return existing, false, nil
	}
	if persist != nil {
		if err := persist(); err != nil {
			st.mu.Unlock()
			return nil, false, err
		}
	}
	ds = newDataset(name, facts, now)
	st.byName[name] = ds
	n := len(st.byName)
	st.mu.Unlock()
	if st.metrics != nil {
		st.metrics.Datasets.Store(int64(n))
	}
	return ds, true, nil
}

// get returns the dataset named name.
func (st *datasetStore) get(name string) (*dataset, bool) {
	st.mu.RLock()
	defer st.mu.RUnlock()
	ds, ok := st.byName[name]
	return ds, ok
}

// delete removes the dataset named name, returning it so the caller
// can release per-view accounting. A non-nil persist callback runs
// while the registry lock is held, before the name is freed: the
// delete record reaches the WAL before any create record can reuse
// the name. A persist error aborts the delete.
func (st *datasetStore) delete(name string, persist func() error) (*dataset, bool, error) {
	st.mu.Lock()
	ds, ok := st.byName[name]
	if ok {
		if persist != nil {
			if err := persist(); err != nil {
				st.mu.Unlock()
				return nil, false, err
			}
		}
		delete(st.byName, name)
	}
	n := len(st.byName)
	st.mu.Unlock()
	if ok && st.metrics != nil {
		st.metrics.Datasets.Store(int64(n))
	}
	return ds, ok, nil
}

// list describes all datasets, sorted by name.
func (st *datasetStore) list() []DatasetInfo {
	st.mu.RLock()
	dss := make([]*dataset, 0, len(st.byName))
	for _, ds := range st.byName {
		dss = append(dss, ds)
	}
	st.mu.RUnlock()
	out := make([]DatasetInfo, 0, len(dss))
	for _, ds := range dss {
		out = append(out, ds.describe())
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}
