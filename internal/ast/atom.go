package ast

import (
	"sort"
	"strings"
)

// Atom is a relational atom p(t1, ..., tn). The comparison predicates
// are not represented as Atoms; see Cmp.
type Atom struct {
	Pred string
	Args []Term
	// At is the atom's source position (zero for synthesized atoms).
	// It is metadata only: Equal, Key, PatternKey, and Isomorphic all
	// ignore it.
	At Pos
}

// NewAtom builds an atom from a predicate name and terms.
func NewAtom(pred string, args ...Term) Atom {
	return Atom{Pred: pred, Args: args}
}

// Arity returns the number of arguments.
func (a Atom) Arity() int { return len(a.Args) }

// Clone returns a deep copy of the atom.
func (a Atom) Clone() Atom {
	args := make([]Term, len(a.Args))
	copy(args, a.Args)
	return Atom{Pred: a.Pred, Args: args, At: a.At}
}

// Equal reports structural equality.
func (a Atom) Equal(b Atom) bool {
	if a.Pred != b.Pred || len(a.Args) != len(b.Args) {
		return false
	}
	for i := range a.Args {
		if !a.Args[i].Equal(b.Args[i]) {
			return false
		}
	}
	return true
}

// Vars appends the variables of a to dst in order of first occurrence,
// skipping duplicates already present in dst, and returns dst.
func (a Atom) Vars(dst []string) []string {
	for _, t := range a.Args {
		if t.IsVar() && !containsStr(dst, t.Name) {
			dst = append(dst, t.Name)
		}
	}
	return dst
}

// HasVar reports whether variable name occurs in the atom.
func (a Atom) HasVar(name string) bool {
	for _, t := range a.Args {
		if t.IsVar() && t.Name == name {
			return true
		}
	}
	return false
}

// Ground reports whether the atom contains no variables.
func (a Atom) Ground() bool {
	for _, t := range a.Args {
		if t.IsVar() {
			return false
		}
	}
	return true
}

// Key returns a canonical string key for the atom (constants and
// variable names included verbatim). Two atoms have the same Key iff
// they are structurally equal.
func (a Atom) Key() string {
	var b strings.Builder
	b.WriteString(a.Pred)
	b.WriteByte('(')
	for i, t := range a.Args {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(t.Key())
	}
	b.WriteByte(')')
	return b.String()
}

// PatternKey returns a key describing the predicate plus the pattern of
// equalities among arguments and the positions/values of constants,
// ignoring the particular variable names. Two atoms have the same
// PatternKey iff they are isomorphic (equal up to a variable renaming).
// For example p(X,Y,X) and p(A,B,A) share a PatternKey, while p(X,X,Y)
// does not share it with them.
func (a Atom) PatternKey() string {
	var b strings.Builder
	b.WriteString(a.Pred)
	b.WriteByte('(')
	seen := map[string]int{}
	for i, t := range a.Args {
		if i > 0 {
			b.WriteByte(',')
		}
		if t.IsVar() {
			id, ok := seen[t.Name]
			if !ok {
				id = len(seen)
				seen[t.Name] = id
			}
			b.WriteByte('v')
			b.WriteString(itoa(id))
		} else {
			b.WriteString(t.Key())
		}
	}
	b.WriteByte(')')
	return b.String()
}

// Isomorphic reports whether a and b are equal up to a bijective
// renaming of variables.
func (a Atom) Isomorphic(b Atom) bool {
	if a.Pred != b.Pred || len(a.Args) != len(b.Args) {
		return false
	}
	fwd := map[string]string{}
	rev := map[string]string{}
	for i := range a.Args {
		ta, tb := a.Args[i], b.Args[i]
		if ta.IsVar() != tb.IsVar() {
			return false
		}
		if !ta.IsVar() {
			if !ta.Equal(tb) {
				return false
			}
			continue
		}
		if m, ok := fwd[ta.Name]; ok {
			if m != tb.Name {
				return false
			}
		} else {
			fwd[ta.Name] = tb.Name
		}
		if m, ok := rev[tb.Name]; ok {
			if m != ta.Name {
				return false
			}
		} else {
			rev[tb.Name] = ta.Name
		}
	}
	return true
}

// String renders the atom in source syntax.
func (a Atom) String() string {
	var b strings.Builder
	b.WriteString(a.Pred)
	if len(a.Args) == 0 {
		return b.String()
	}
	b.WriteByte('(')
	for i, t := range a.Args {
		if i > 0 {
			b.WriteString(", ")
		}
		b.WriteString(t.String())
	}
	b.WriteByte(')')
	return b.String()
}

// AtomsKey returns a canonical, order-insensitive key for a set of
// atoms: the sorted concatenation of their Keys.
func AtomsKey(atoms []Atom) string {
	keys := make([]string, len(atoms))
	for i, a := range atoms {
		keys[i] = a.Key()
	}
	sort.Strings(keys)
	return strings.Join(keys, ";")
}

func containsStr(xs []string, s string) bool {
	for _, x := range xs {
		if x == s {
			return true
		}
	}
	return false
}

func itoa(n int) string {
	// Tiny positive-int formatter; avoids strconv import churn here.
	if n == 0 {
		return "0"
	}
	var buf [20]byte
	i := len(buf)
	for n > 0 {
		i--
		buf[i] = byte('0' + n%10)
		n /= 10
	}
	return string(buf[i:])
}
